//! The campaign file format: a named batch of scenario items plus the
//! solve options and retry policy they run under.
//!
//! A campaign document is JSON (hand-rolled via [`gprs_core::codec`];
//! serde is not vendored):
//!
//! ```json
//! {
//!   "format": "gprs-campaign/v1",
//!   "name": "capacity-sweep",
//!   "options": { "tolerance": 1e-10, "solve": { "max_sweeps": 20000 } },
//!   "retry": { "max_attempts": 3, "backoff_ms": 50 },
//!   "items": [
//!     { "id": "hot-0.6", "scenario": { "format": "gprs-scenario/v1", ... } }
//!   ]
//! }
//! ```
//!
//! `options` and `retry` are optional and field-wise defaulted, so a
//! hand-written campaign only spells out what it changes. Item ids must
//! be unique and non-empty — they key journal recovery.

use crate::CampaignError;
use gprs_core::codec::{
    cluster_options_from_json_value, cluster_options_to_json_value, parse_json,
    scenario_from_json_value, scenario_to_json_value, JsonValue,
};
use gprs_core::{CellConfig, ClusterSolveOptions, Scenario};
use gprs_traffic::TrafficModel;
use std::time::Duration;

/// Format tag of campaign documents; bumped on breaking changes.
pub const CAMPAIGN_FORMAT: &str = "gprs-campaign/v1";

/// Per-item retry policy: how many attempts, how the backoff and
/// budgets escalate, and how far the last-resort degraded attempt may
/// relax the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total solve attempts per item before degradation kicks in
    /// (minimum 1). Attempt `k` doubles the iteration/sweep/wall-time
    /// budgets `k` times, so later attempts give `solve_resilient`'s
    /// rungs progressively more room.
    pub max_attempts: usize,
    /// Base backoff before the first retry; doubles per retry.
    /// `Duration::ZERO` (the default) retries immediately — campaigns
    /// are batch workloads, not flaky-network clients, so backoff
    /// mainly matters when items contend for memory bandwidth.
    pub backoff: Duration,
    /// Optional per-attempt wall-clock budget for the inner solves
    /// (lowered onto `SolveOptions::max_wall_time`); doubles per
    /// retry. `None` leaves the sweep caps as the only budget, which
    /// also keeps solve outcomes timing-independent — required for the
    /// bitwise resume contract, so the chaos corpus runs without it.
    pub attempt_wall_time: Option<Duration>,
    /// Tolerance for the final graceful-degradation attempt after all
    /// regular attempts fail. Must be looser than (or equal to) the
    /// campaign tolerance to be useful; default `1e-4`.
    pub degraded_tolerance: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            attempt_wall_time: None,
            degraded_tolerance: 1e-4,
        }
    }
}

/// One campaign item: a unique id (the journal key) and the scenario
/// to solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignItem {
    /// Unique, non-empty item id.
    pub id: String,
    /// The scenario this item solves.
    pub scenario: Scenario,
}

/// A full campaign: name, shared solve options, retry policy, items.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (for reports and logs).
    pub name: String,
    /// Cluster solve options every item runs under (attempt escalation
    /// scales the budgets, never the tolerance).
    pub options: ClusterSolveOptions,
    /// The per-item retry policy.
    pub retry: RetryPolicy,
    /// The items, solved in order.
    pub items: Vec<CampaignItem>,
}

impl CampaignSpec {
    /// Validates campaign-level invariants: at least one item, unique
    /// non-empty ids, positive `max_attempts`, finite positive
    /// degraded tolerance.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] naming the first violation.
    pub fn validate(&self) -> Result<(), CampaignError> {
        let fail = |reason: String| Err(CampaignError::Spec { reason });
        if self.items.is_empty() {
            return fail("campaign has no items".into());
        }
        if self.retry.max_attempts == 0 {
            return fail("retry.max_attempts must be >= 1".into());
        }
        if !(self.retry.degraded_tolerance.is_finite() && self.retry.degraded_tolerance > 0.0) {
            return fail(format!(
                "retry.degraded_tolerance must be positive and finite, got {}",
                self.retry.degraded_tolerance
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for (i, item) in self.items.iter().enumerate() {
            if item.id.is_empty() {
                return fail(format!("item {i} has an empty id"));
            }
            if !seen.insert(item.id.as_str()) {
                return fail(format!("duplicate item id `{}`", item.id));
            }
        }
        Ok(())
    }

    /// Serializes the campaign to a [`JsonValue`] document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("format".into(), JsonValue::Str(CAMPAIGN_FORMAT.into())),
            ("name".into(), JsonValue::Str(self.name.clone())),
            (
                "options".into(),
                cluster_options_to_json_value(&self.options),
            ),
            ("retry".into(), retry_to_json_value(&self.retry)),
            (
                "items".into(),
                JsonValue::Array(
                    self.items
                        .iter()
                        .map(|item| {
                            JsonValue::Object(vec![
                                ("id".into(), JsonValue::Str(item.id.clone())),
                                ("scenario".into(), scenario_to_json_value(&item.scenario)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the campaign to compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json_string()
    }

    /// Parses and validates a campaign document.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Codec`] for malformed/mistyped documents,
    /// [`CampaignError::Spec`] for semantic violations.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        let value = parse_json(text)?;
        let schema = |path: &str, reason: &str| {
            CampaignError::Codec(gprs_core::CodecError::Schema {
                path: path.to_string(),
                reason: reason.to_string(),
            })
        };
        let format = value
            .get("format")
            .and_then(|v| v.as_str())
            .ok_or_else(|| schema("format", "missing format tag"))?;
        if format != CAMPAIGN_FORMAT {
            return Err(schema(
                "format",
                &format!("expected `{CAMPAIGN_FORMAT}`, got `{format}`"),
            ));
        }
        let name = value
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| schema("name", "expected a string"))?
            .to_string();
        let options = match value.get("options") {
            Some(v) => cluster_options_from_json_value(v, "options")?,
            None => ClusterSolveOptions::default(),
        };
        let retry = match value.get("retry") {
            Some(v) => retry_from_json_value(v)?,
            None => RetryPolicy::default(),
        };
        let items_value = value
            .get("items")
            .and_then(|v| v.as_array())
            .ok_or_else(|| schema("items", "expected an array"))?;
        let mut items = Vec::with_capacity(items_value.len());
        for (i, item) in items_value.iter().enumerate() {
            let path = format!("items[{i}]");
            let id = item
                .get("id")
                .and_then(|v| v.as_str())
                .ok_or_else(|| schema(&format!("{path}.id"), "expected a string"))?
                .to_string();
            let scenario_value = item
                .get("scenario")
                .ok_or_else(|| schema(&format!("{path}.scenario"), "missing field"))?;
            let scenario = scenario_from_json_value(scenario_value)?;
            items.push(CampaignItem { id, scenario });
        }
        let spec = CampaignSpec {
            name,
            options,
            retry,
            items,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn duration_to_json_value(d: Duration) -> JsonValue {
    JsonValue::Object(vec![
        ("secs".into(), JsonValue::Num(d.as_secs() as f64)),
        ("nanos".into(), JsonValue::Num(d.subsec_nanos() as f64)),
    ])
}

fn duration_from_json_value(value: &JsonValue, path: &str) -> Result<Duration, CampaignError> {
    let schema = |reason: &str| {
        CampaignError::Codec(gprs_core::CodecError::Schema {
            path: path.to_string(),
            reason: reason.to_string(),
        })
    };
    let secs = value
        .get("secs")
        .and_then(|v| v.as_usize())
        .ok_or_else(|| schema("expected integer `secs`"))? as u64;
    let nanos = value
        .get("nanos")
        .and_then(|v| v.as_usize())
        .ok_or_else(|| schema("expected integer `nanos`"))?;
    let nanos = u32::try_from(nanos).map_err(|_| schema("`nanos` must fit in u32"))?;
    Ok(Duration::new(secs, nanos))
}

fn retry_to_json_value(retry: &RetryPolicy) -> JsonValue {
    JsonValue::Object(vec![
        (
            "max_attempts".into(),
            JsonValue::Num(retry.max_attempts as f64),
        ),
        ("backoff".into(), duration_to_json_value(retry.backoff)),
        (
            "attempt_wall_time".into(),
            match retry.attempt_wall_time {
                None => JsonValue::Null,
                Some(d) => duration_to_json_value(d),
            },
        ),
        (
            "degraded_tolerance".into(),
            JsonValue::Num(retry.degraded_tolerance),
        ),
    ])
}

fn retry_from_json_value(value: &JsonValue) -> Result<RetryPolicy, CampaignError> {
    let schema = |path: &str, reason: &str| {
        CampaignError::Codec(gprs_core::CodecError::Schema {
            path: path.to_string(),
            reason: reason.to_string(),
        })
    };
    let mut retry = RetryPolicy::default();
    if let Some(v) = value.get("max_attempts") {
        retry.max_attempts = v
            .as_usize()
            .ok_or_else(|| schema("retry.max_attempts", "expected an integer"))?;
    }
    if let Some(v) = value.get("backoff") {
        retry.backoff = duration_from_json_value(v, "retry.backoff")?;
    }
    if let Some(v) = value.get("attempt_wall_time") {
        retry.attempt_wall_time = match v {
            JsonValue::Null => None,
            obj => Some(duration_from_json_value(obj, "retry.attempt_wall_time")?),
        };
    }
    if let Some(v) = value.get("degraded_tolerance") {
        retry.degraded_tolerance = v
            .as_f64()
            .ok_or_else(|| schema("retry.degraded_tolerance", "expected a number"))?;
    }
    Ok(retry)
}

/// A deterministic demo campaign of `count` items: cheap small-state
/// hot-spot/corridor/hex-torus scenarios cycling through three
/// template shapes, solved with quick tolerances. Used by the
/// `campaign-run --emit-demo` flag, the bench report's `campaign`
/// section, and the CI chaos job — all of which need a reproducible
/// workload with shape reuse and topology diversity but no appetite
/// for wall time.
pub fn demo_spec(count: usize) -> CampaignSpec {
    let base = |buffer: usize, rate: f64| -> CellConfig {
        CellConfig::builder()
            .total_channels(4)
            .reserved_pdchs(1)
            .buffer_capacity(buffer)
            .traffic_model(TrafficModel::Model3)
            .max_gprs_sessions(2)
            .call_arrival_rate(rate)
            .build()
            .expect("demo cell is valid")
    };
    let items = (0..count)
        .map(|i| {
            // Three buffer depths → three template shapes shared
            // across the campaign; load ramps so items differ.
            let buffer = 5 + i % 3;
            let rate = 0.2 + 0.05 * (i % 7) as f64;
            let scenario = match i % 5 {
                // Mostly ring7 hot spots...
                0..=2 => gprs_core::Scenario::hot_spot(base(buffer, rate), rate * 2.0)
                    .expect("demo hot spot is valid"),
                // ...with corridor and hex-torus topologies mixed in.
                3 => {
                    let graph = gprs_core::CellGraph::corridor(5).expect("corridor(5)");
                    gprs_core::Scenario::from_graph(
                        "demo-corridor",
                        graph,
                        vec![base(buffer, rate); 5],
                    )
                    .expect("demo corridor is valid")
                }
                _ => {
                    let graph = gprs_core::CellGraph::hex_torus(3, 3).expect("hex_torus(3,3)");
                    gprs_core::Scenario::from_graph(
                        "demo-torus",
                        graph,
                        vec![base(buffer, rate); 9],
                    )
                    .expect("demo torus is valid")
                }
            };
            CampaignItem {
                id: format!("demo-{i:03}"),
                scenario: scenario.named(format!("demo-{i:03}")),
            }
        })
        .collect();
    CampaignSpec {
        name: "demo".into(),
        options: ClusterSolveOptions::quick(),
        retry: RetryPolicy::default(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_campaign_round_trips_to_equality() {
        let spec = demo_spec(11);
        spec.validate().unwrap();
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_validation_rejects_broken_campaigns() {
        let mut spec = demo_spec(3);
        spec.items[2].id = spec.items[0].id.clone();
        assert!(matches!(spec.validate(), Err(CampaignError::Spec { .. })));
        let mut spec = demo_spec(2);
        spec.items[0].id.clear();
        assert!(spec.validate().is_err());
        let mut spec = demo_spec(1);
        spec.retry.max_attempts = 0;
        assert!(spec.validate().is_err());
        let mut spec = demo_spec(1);
        spec.items.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn campaign_documents_reject_wrong_format_and_truncation() {
        let text = demo_spec(2).to_json();
        let wrong = text.replacen("gprs-campaign/v1", "gprs-campaign/v0", 1);
        assert!(CampaignSpec::from_json(&wrong).is_err());
        assert!(CampaignSpec::from_json(&text[..text.len() - 10]).is_err());
        // Defaulted sections: a minimal document parses.
        let minimal = format!(
            "{{\"format\":\"{CAMPAIGN_FORMAT}\",\"name\":\"m\",\"items\":[{{\"id\":\"a\",\"scenario\":{}}}]}}",
            gprs_core::codec::scenario_to_json(&demo_spec(1).items[0].scenario)
        );
        let spec = CampaignSpec::from_json(&minimal).unwrap();
        assert_eq!(spec.retry, RetryPolicy::default());
        assert_eq!(spec.options.max_iterations, 500);
    }

    #[test]
    fn retry_policy_round_trips() {
        let retry = RetryPolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(125),
            attempt_wall_time: Some(Duration::new(2, 500)),
            degraded_tolerance: 1e-3,
        };
        let value = retry_to_json_value(&retry);
        let back = retry_from_json_value(&parse_json(&value.to_json_string()).unwrap()).unwrap();
        assert_eq!(back, retry);
    }
}
