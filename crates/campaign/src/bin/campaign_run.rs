//! `campaign-run`: the batch campaign CLI.
//!
//! ```text
//! campaign-run <spec.json> [--journal PATH] [--out PATH] [--threads N]
//!              [--batch-size N] [--template-cap N]
//!              [--crash-after-batches N]
//! campaign-run --emit-demo N
//! ```
//!
//! Run mode solves every item of the campaign file, journaling to
//! `--journal` (resumable: re-running the same command after a crash
//! reuses journaled items verbatim), and writes the report JSON to
//! stdout or `--out`. Item-level failures are *reported*, not fatal:
//! the exit code is `0` as long as the campaign itself ran, `1` for
//! spec/IO/usage errors, and `2` when any item ended
//! [`Failed`](gprs_campaign::ItemStatus::Failed) — scripts can
//! distinguish "campaign broken" from "some items unsolvable".
//!
//! `--emit-demo N` prints the deterministic N-item demo campaign used
//! by the CI chaos job; `--crash-after-batches N` aborts the process
//! right after the Nth journaled batch (the kill half of
//! kill-and-resume).

use gprs_campaign::{demo_spec, run_campaign, CampaignSpec, RunnerConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: campaign-run <spec.json> [--journal PATH] [--out PATH] \
[--threads N] [--batch-size N] [--template-cap N] [--crash-after-batches N]\n\
       campaign-run --emit-demo N";

fn parse_count(flag: &str, value: Option<String>) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<usize>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let mut spec_path: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut out: Option<String> = None;
    let mut cfg = RunnerConfig::default();
    let mut emit_demo: Option<usize> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-demo" => emit_demo = Some(parse_count("--emit-demo", args.next())?),
            "--journal" => journal = Some(args.next().ok_or("--journal needs a path")?),
            "--out" => out = Some(args.next().ok_or("--out needs a path")?),
            "--threads" => cfg.threads = parse_count("--threads", args.next())?,
            "--batch-size" => cfg.batch_size = parse_count("--batch-size", args.next())?,
            "--template-cap" => {
                cfg.template_capacity = Some(parse_count("--template-cap", args.next())?)
            }
            "--crash-after-batches" => {
                cfg.crash_after_batches = Some(parse_count("--crash-after-batches", args.next())?)
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }

    if let Some(count) = emit_demo {
        println!("{}", demo_spec(count.max(1)).to_json());
        return Ok(ExitCode::SUCCESS);
    }

    let spec_path = spec_path.ok_or(USAGE)?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let spec = CampaignSpec::from_json(&text).map_err(|e| e.to_string())?;
    let report = run_campaign(&spec, journal.as_deref().map(std::path::Path::new), &cfg)
        .map_err(|e| e.to_string())?;

    let json = report.to_json_value().to_json_string();
    match &out {
        Some(path) => {
            std::fs::write(path, json.as_bytes()).map_err(|e| format!("writing {path}: {e}"))?
        }
        None => println!("{json}"),
    }
    eprintln!(
        "campaign `{}`: {} items — {} solved, {} degraded, {} failed, {} retries, \
         {} journaled reused, {} dropped lines, {:.2} items/s",
        report.name,
        report.results.len(),
        report.solved(),
        report.degraded(),
        report.failed(),
        report.retries,
        report.reused_from_journal,
        report.dropped_journal_lines,
        report.items_per_sec(),
    );
    Ok(if report.failed() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("campaign-run: {message}");
            ExitCode::FAILURE
        }
    }
}
