//! The supervised campaign runner: batches, worker pool, retry
//! ladder, journaling, graceful degradation, and the campaign report.
//!
//! Scheduling is deterministic: pending items run in spec order, in
//! fixed-size batches, each batch drained from the load-balanced queue
//! of one **campaign-spanning** [`gprs_exec::with_worker_pool`] scope
//! (workers spawn once per run and park between batches, instead of
//! re-spawning per batch). Per-item solve outcomes are independent of
//! thread count and batch boundaries (the cluster solver's determinism
//! contract plus a shared template registry that only caches symbolic
//! structure), which is what makes the journal's resume path bitwise:
//! a journaled item is reused verbatim, an unjournaled one re-solves
//! to the exact bytes it would have produced the first time.

use crate::journal::{entry_to_json_value, ItemFailure, ItemResult, ItemStatus, Journal};
use crate::spec::{CampaignSpec, RetryPolicy};
use crate::CampaignError;
use gprs_core::codec::JsonValue;
use gprs_core::stress::{CampaignFaults, FaultAction};
use gprs_core::{ClusterSolveOptions, SolveRung, SolvedCluster, TemplateRegistry};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Escalation shifts are capped so budget doubling cannot overflow
/// into nonsense (`2^16` times the base budget is already "forever").
const MAX_ESCALATION_SHIFT: usize = 16;

/// Runner knobs. `Default` is the production configuration; the crash
/// and fault fields exist for the chaos tests and CI chaos job.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads for the per-batch item fan-out; `0` uses
    /// [`gprs_exec::num_threads`]. Item results are identical for any
    /// value.
    pub threads: usize,
    /// Items per journal batch (fsync cadence); `0` is treated as the
    /// default of 8. Smaller batches lose less work to a crash, larger
    /// ones fsync less often.
    pub batch_size: usize,
    /// LRU cap on the shared template registry (`None` = unbounded).
    /// Shapes beyond the cap re-run symbolic setup on reuse but
    /// numerics are unaffected.
    pub template_capacity: Option<usize>,
    /// Chaos hook: `Some(n)` aborts the process (SIGKILL-equivalent,
    /// no unwinding, no cleanup) immediately after the `n`-th batch
    /// has been journaled and fsync'd. Used by the kill-and-resume
    /// tests and the CI chaos job; never set in production.
    pub crash_after_batches: Option<usize>,
    /// Chaos hook: fault plan injected into solve attempts.
    pub faults: Option<Arc<CampaignFaults>>,
}

impl RunnerConfig {
    fn effective_batch_size(&self) -> usize {
        if self.batch_size == 0 {
            8
        } else {
            self.batch_size
        }
    }
}

/// The outcome of a campaign run: every item's result plus the
/// resilience and reuse counters the health summary is built from.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub name: String,
    /// One result per spec item, in item order, journaled entries and
    /// fresh solves interleaved indistinguishably.
    pub results: Vec<ItemResult>,
    /// Items served verbatim from the journal on resume.
    pub reused_from_journal: usize,
    /// Journal lines dropped during recovery (torn writes, garbled
    /// bytes, id mismatches against the spec).
    pub dropped_journal_lines: usize,
    /// Total retry attempts across items (attempts beyond each item's
    /// first, including panicked and degraded attempts).
    pub retries: usize,
    /// Symbolic template setups performed by the shared registry.
    pub template_setups: usize,
    /// Shapes evicted by the registry's LRU cap.
    pub template_evictions: u64,
    /// Wall time of this run (excludes journaled work from prior
    /// runs).
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Items solved at full tolerance.
    pub fn solved(&self) -> usize {
        self.count(ItemStatus::Solved)
    }

    /// Items served by the graceful-degradation attempt.
    pub fn degraded(&self) -> usize {
        self.count(ItemStatus::Degraded)
    }

    /// Items that produced no answer (typed failures).
    pub fn failed(&self) -> usize {
        self.count(ItemStatus::Failed)
    }

    fn count(&self, status: ItemStatus) -> usize {
        self.results.iter().filter(|r| r.status == status).count()
    }

    /// Surrogate-served cell solves summed over all items.
    pub fn surrogate_solves(&self) -> usize {
        self.results.iter().map(|r| r.surrogate_solves).sum()
    }

    /// Items processed per wall-clock second in this run (journaled
    /// reuse excluded from the numerator).
    pub fn items_per_sec(&self) -> f64 {
        let fresh = self.results.len().saturating_sub(self.reused_from_journal);
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            fresh as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes the report (summary plus per-item entries) to a
    /// [`JsonValue`] document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), JsonValue::Str(self.name.clone())),
            ("items".into(), JsonValue::Num(self.results.len() as f64)),
            ("solved".into(), JsonValue::Num(self.solved() as f64)),
            ("degraded".into(), JsonValue::Num(self.degraded() as f64)),
            ("failed".into(), JsonValue::Num(self.failed() as f64)),
            ("retries".into(), JsonValue::Num(self.retries as f64)),
            (
                "surrogate_solves".into(),
                JsonValue::Num(self.surrogate_solves() as f64),
            ),
            (
                "reused_from_journal".into(),
                JsonValue::Num(self.reused_from_journal as f64),
            ),
            (
                "dropped_journal_lines".into(),
                JsonValue::Num(self.dropped_journal_lines as f64),
            ),
            (
                "template_setups".into(),
                JsonValue::Num(self.template_setups as f64),
            ),
            (
                "template_evictions".into(),
                JsonValue::Num(self.template_evictions as f64),
            ),
            (
                "elapsed_secs".into(),
                JsonValue::Num(self.elapsed.as_secs_f64()),
            ),
            ("items_per_sec".into(), JsonValue::Num(self.items_per_sec())),
            (
                "results".into(),
                JsonValue::Array(self.results.iter().map(entry_to_json_value).collect()),
            ),
        ])
    }
}

/// Runs (or resumes) a campaign.
///
/// With a `journal_path`, previously journaled items are reused
/// verbatim and every fresh result is appended batch-by-batch with an
/// fsync per batch; without one, everything runs in memory. Item-level
/// failures do **not** fail the campaign — they come back as
/// [`ItemStatus::Failed`] entries with typed [`ItemFailure`]s.
///
/// # Errors
///
/// [`CampaignError::Spec`] for invalid specs, [`CampaignError::Io`]
/// for journal I/O failures. Never errors on item solve outcomes.
pub fn run_campaign(
    spec: &CampaignSpec,
    journal_path: Option<&Path>,
    cfg: &RunnerConfig,
) -> Result<CampaignReport, CampaignError> {
    spec.validate()?;
    let started = Instant::now();

    // Recover the journal: entries for unknown indices or with ids
    // that do not match the spec are stale — drop and count them.
    let mut dropped = 0usize;
    let mut recovered: Vec<Option<ItemResult>> = vec![None; spec.items.len()];
    let mut journal = match journal_path {
        Some(path) => {
            let recovery = crate::journal::load_journal(path)?;
            dropped = recovery.dropped_lines;
            for entry in recovery.entries {
                let index = entry.index;
                match spec.items.get(index) {
                    Some(item) if item.id == entry.id && recovered[index].is_none() => {
                        recovered[index] = Some(entry);
                    }
                    _ => dropped += 1,
                }
            }
            Some(Journal::open_append(path)?)
        }
        None => None,
    };
    let reused_from_journal = recovered.iter().filter(|e| e.is_some()).count();

    let pending: Vec<usize> = (0..spec.items.len())
        .filter(|&i| recovered[i].is_none())
        .collect();

    let registry = match cfg.template_capacity {
        Some(cap) => TemplateRegistry::with_capacity(cap),
        None => TemplateRegistry::new(),
    };
    let faults = cfg.faults.clone();
    let faults_ref = faults.as_deref();

    // One worker-pool scope spans every batch of the run: the workers
    // spawn once, park between batches (journaling happens on this
    // thread), and drain each batch's items from the shared queue.
    let threads = if cfg.threads == 0 {
        gprs_exec::num_threads()
    } else {
        cfg.threads
    };
    gprs_exec::with_worker_pool(
        vec![(); threads.max(1)],
        |_, _state: &mut (), (index, offset): (usize, usize)| {
            solve_item(spec, index, offset, &registry, faults_ref)
        },
        |pool| -> Result<(), CampaignError> {
            let mut batches_done = 0usize;
            for batch in pending.chunks(cfg.effective_batch_size()) {
                let results = run_batch(spec, batch, pool);
                if let Some(journal) = journal.as_mut() {
                    journal.append_batch(&results)?;
                }
                batches_done += 1;
                if cfg.crash_after_batches == Some(batches_done) {
                    // The chaos hook: die *after* the fsync, exactly
                    // like a SIGKILL at a batch boundary — no
                    // unwinding, no drop glue, no chance to write
                    // anything else.
                    std::process::abort();
                }
                for result in results {
                    let index = result.index;
                    recovered[index] = Some(result);
                }
            }
            Ok(())
        },
    )?;

    let results: Vec<ItemResult> = recovered
        .into_iter()
        .map(|e| e.expect("every item is journaled or freshly solved"))
        .collect();
    let retries = results.iter().map(|r| r.attempts.saturating_sub(1)).sum();
    Ok(CampaignReport {
        name: spec.name.clone(),
        results,
        reused_from_journal,
        dropped_journal_lines: dropped,
        retries,
        template_setups: registry.setups(),
        template_evictions: registry.evictions(),
        elapsed: started.elapsed(),
    })
}

/// Runs one batch with panic supervision: panicked slots are re-run
/// with their consumed attempts carried forward until they produce a
/// result or exhaust `max_attempts`, at which point they become typed
/// [`ItemFailure::Panicked`] entries. Sibling items are never
/// disturbed — that is the pool's per-slot panic containment.
fn run_batch(
    spec: &CampaignSpec,
    batch: &[usize],
    pool: &mut gprs_exec::PoolHandle<'_, (), (usize, usize), ItemResult>,
) -> Vec<ItemResult> {
    let mut slots: Vec<Option<ItemResult>> = vec![None; batch.len()];
    let mut consumed = vec![0usize; batch.len()];
    let mut last_panic: Vec<Option<String>> = vec![None; batch.len()];

    loop {
        let todo: Vec<(usize, usize)> = (0..batch.len())
            .filter(|&s| slots[s].is_none() && consumed[s] < spec.retry.max_attempts)
            .map(|s| (s, consumed[s]))
            .collect();
        if todo.is_empty() {
            break;
        }
        let outcomes = pool.run_queue(
            todo.iter()
                .map(|&(slot, offset)| (batch[slot], offset))
                .collect(),
        );
        for (j, outcome) in outcomes.into_iter().enumerate() {
            let (slot, _) = todo[j];
            match outcome {
                Ok(result) => slots[slot] = Some(result),
                Err(panic) => {
                    consumed[slot] += 1;
                    last_panic[slot] = Some(panic.message);
                }
            }
        }
    }

    for (s, slot) in slots.iter_mut().enumerate() {
        if slot.is_none() {
            let index = batch[s];
            *slot = Some(ItemResult {
                index,
                id: spec.items[index].id.clone(),
                status: ItemStatus::Failed,
                attempts: consumed[s],
                measures: None,
                rung: SolveRung::Primary,
                failed_rungs: 0,
                surrogate_solves: 0,
                failure: Some(ItemFailure::Panicked {
                    message: last_panic[s]
                        .take()
                        .unwrap_or_else(|| "<unknown panic>".into()),
                }),
            });
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot resolved"))
        .collect()
}

/// Doubles the iteration/sweep/wall-time budgets `attempt` times
/// (tolerances untouched — retries buy room, not looseness) and pins
/// inner solves to one thread and one shard when the spec leaves the
/// counts adaptive: the campaign parallelizes *across* items, and
/// nested pools (thread fan-outs or per-item shard workers picking up
/// a machine-wide `GPRS_SHARDS`) would oversubscribe. A spec that
/// explicitly sets `shards` keeps it.
fn escalate(
    base: &ClusterSolveOptions,
    retry: &RetryPolicy,
    attempt: usize,
) -> ClusterSolveOptions {
    let mut opts = base.clone();
    if opts.threads == 0 {
        opts.threads = 1;
    }
    if opts.shards == 0 {
        opts.shards = 1;
    }
    let factor = 1usize << attempt.min(MAX_ESCALATION_SHIFT);
    opts.max_iterations = opts.max_iterations.saturating_mul(factor);
    opts.solve.max_sweeps = opts.solve.max_sweeps.saturating_mul(factor);
    if let Some(budget) = retry.attempt_wall_time {
        opts.solve.max_wall_time =
            Some(budget.saturating_mul(u32::try_from(factor).unwrap_or(u32::MAX)));
    }
    opts
}

/// Worst-case solve-health summary across the cells of one solved
/// cluster: the deepest fallback rung any cell needed and the maximum
/// failed-rung count.
fn health_summary(solved: &SolvedCluster) -> (SolveRung, u8) {
    let depth = |rung: SolveRung| match rung {
        SolveRung::Primary => 0u8,
        SolveRung::Surrogate => 1,
        SolveRung::ColdRestart => 2,
        SolveRung::AlternateIterative => 3,
        SolveRung::DirectGth => 4,
    };
    let mut worst = SolveRung::Primary;
    let mut failed = 0u8;
    for cell in solved.cells() {
        if depth(cell.health.rung) > depth(worst) {
            worst = cell.health.rung;
        }
        failed = failed.max(cell.health.failed_rungs);
    }
    (worst, failed)
}

fn success_result(
    index: usize,
    id: &str,
    status: ItemStatus,
    attempts: usize,
    solved: &SolvedCluster,
) -> ItemResult {
    let (rung, failed_rungs) = health_summary(solved);
    ItemResult {
        index,
        id: id.to_string(),
        status,
        attempts,
        measures: Some(solved.mid().measures),
        rung,
        failed_rungs,
        surrogate_solves: solved.surrogate_solves(),
        failure: None,
    }
}

/// Solves one item through the full retry ladder. Never returns an
/// `Err` — failures become typed [`ItemResult`]s — but injected
/// panics *do* unwind out, by design: the catching pool above is the
/// isolation boundary under test.
fn solve_item(
    spec: &CampaignSpec,
    index: usize,
    attempt_offset: usize,
    registry: &TemplateRegistry,
    faults: Option<&CampaignFaults>,
) -> ItemResult {
    let item = &spec.items[index];
    let retry = &spec.retry;
    let failed = |attempts: usize, failure: ItemFailure| ItemResult {
        index,
        id: item.id.clone(),
        status: ItemStatus::Failed,
        attempts,
        measures: None,
        rung: SolveRung::Primary,
        failed_rungs: 0,
        surrogate_solves: 0,
        failure: Some(failure),
    };

    // Structural lowering errors are not retryable: every attempt
    // would fail identically.
    let model = match item.scenario.to_cluster() {
        Ok(model) => model,
        Err(e) => {
            return failed(
                attempt_offset + 1,
                ItemFailure::Model {
                    error: e.to_string(),
                },
            )
        }
    };

    let mut last_error = String::from("no solve attempt ran");
    for attempt in attempt_offset..retry.max_attempts {
        if attempt > 0 && !retry.backoff.is_zero() {
            let shift = u32::try_from((attempt - 1).min(MAX_ESCALATION_SHIFT)).unwrap_or(0);
            std::thread::sleep(retry.backoff.saturating_mul(1u32 << shift));
        }
        match faults.map_or(FaultAction::Proceed, CampaignFaults::next_attempt) {
            FaultAction::Proceed => {}
            FaultAction::Panic => {
                panic!(
                    "injected campaign fault: panic on item `{}` attempt {attempt}",
                    item.id
                );
            }
            FaultAction::ExhaustBudget => {
                last_error = format!(
                    "injected campaign fault: wall-time budget exhausted on attempt {attempt}"
                );
                continue;
            }
        }
        let opts = escalate(&spec.options, retry, attempt);
        match model.solve_with_registry(&opts, registry) {
            Ok(solved) => {
                return success_result(index, &item.id, ItemStatus::Solved, attempt + 1, &solved)
            }
            Err(e) if e.is_solver_failure() => last_error = e.to_string(),
            Err(e) => {
                return failed(
                    attempt + 1,
                    ItemFailure::Model {
                        error: e.to_string(),
                    },
                )
            }
        }
    }

    // Graceful degradation: one last attempt at relaxed tolerance with
    // fully escalated budgets. An answer here is better than no
    // answer — it ships flagged, never silently.
    let mut opts = escalate(&spec.options, retry, retry.max_attempts);
    opts.tolerance = opts.tolerance.max(retry.degraded_tolerance);
    opts.solve.tolerance = opts.solve.tolerance.max(retry.degraded_tolerance);
    match model.solve_with_registry(&opts, registry) {
        Ok(solved) => success_result(
            index,
            &item.id,
            ItemStatus::Degraded,
            retry.max_attempts + 1,
            &solved,
        ),
        Err(e) => {
            if e.is_solver_failure() {
                last_error = e.to_string();
            }
            failed(
                retry.max_attempts + 1,
                ItemFailure::BudgetExhausted { last_error },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::demo_spec;

    #[test]
    fn demo_campaign_runs_clean_and_deterministically() {
        let spec = demo_spec(6);
        let cfg = RunnerConfig::default();
        let a = run_campaign(&spec, None, &cfg).unwrap();
        assert_eq!(a.results.len(), 6);
        assert_eq!(a.solved(), 6);
        assert_eq!(a.failed() + a.degraded(), 0);
        assert_eq!(a.reused_from_journal, 0);
        // Same spec, different thread count: bitwise identical items.
        let b = run_campaign(
            &spec,
            None,
            &RunnerConfig {
                threads: 2,
                batch_size: 2,
                ..RunnerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(a.results, b.results);
        // Template reuse: three shapes across six items.
        assert!(a.template_setups < 6, "shapes should be shared");
    }

    #[test]
    fn injected_panics_and_exhaustion_lose_no_items() {
        let spec = demo_spec(5);
        // Panic on the first two attempts the pool runs, exhaust the
        // budget of two later ones: everything must still resolve.
        let faults = Arc::new(
            CampaignFaults::none()
                .with_panic_on(0)
                .with_panic_on(1)
                .with_exhaust_on(3)
                .with_exhaust_on(5),
        );
        let cfg = RunnerConfig {
            threads: 1,
            batch_size: 2,
            faults: Some(faults),
            ..RunnerConfig::default()
        };
        let report = run_campaign(&spec, None, &cfg).unwrap();
        assert_eq!(report.results.len(), 5);
        for r in &report.results {
            match r.status {
                ItemStatus::Solved | ItemStatus::Degraded => {
                    assert!(r.measures.is_some());
                    assert!(r.failure.is_none());
                }
                ItemStatus::Failed => {
                    assert!(r.failure.is_some());
                    assert!(r.measures.is_none());
                }
            }
        }
        // The injected faults cost retries, and everything recovered.
        assert!(report.retries >= 2, "panics/exhaustions consume attempts");
        assert_eq!(report.solved(), 5, "faults are transient; items recover");
    }

    #[test]
    fn campaign_with_unsolvable_item_degrades_or_fails_just_that_item() {
        let mut spec = demo_spec(3);
        // Starve the solver: one outer iteration, one sweep, no
        // retries' worth of budget doubling can save tolerance 1e-8.
        spec.options.max_iterations = 1;
        spec.options.solve.max_sweeps = 1;
        spec.retry.max_attempts = 1;
        let report = run_campaign(&spec, None, &RunnerConfig::default()).unwrap();
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            // Nothing is lost: every item is solved, degraded, or a
            // typed failure.
            match r.status {
                ItemStatus::Failed => assert!(matches!(
                    r.failure,
                    Some(ItemFailure::BudgetExhausted { .. })
                )),
                _ => assert!(r.measures.is_some()),
            }
        }
    }

    #[test]
    fn journaled_run_resumes_bitwise() {
        let dir =
            std::env::temp_dir().join(format!("gprs-campaign-runner-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("resume.jsonl");
        let _ = std::fs::remove_file(&journal);
        let spec = demo_spec(7);
        let cfg = RunnerConfig {
            batch_size: 3,
            ..RunnerConfig::default()
        };
        // Uninterrupted reference, no journal.
        let reference = run_campaign(&spec, None, &cfg).unwrap();
        // First journaled run writes everything...
        let first = run_campaign(&spec, Some(&journal), &cfg).unwrap();
        assert_eq!(first.results, reference.results);
        // ...and a resume reuses all of it, byte for byte.
        let resumed = run_campaign(&spec, Some(&journal), &cfg).unwrap();
        assert_eq!(resumed.reused_from_journal, 7);
        assert_eq!(resumed.results, reference.results);
        // Torn tail: drop bytes off the journal, resume re-solves the
        // torn item and converges to the same results.
        let bytes = std::fs::read(&journal).unwrap();
        let torn = gprs_core::stress::truncate_tail(&bytes, 9);
        std::fs::write(&journal, &torn).unwrap();
        let healed = run_campaign(&spec, Some(&journal), &cfg).unwrap();
        assert_eq!(healed.dropped_journal_lines, 1);
        assert_eq!(healed.reused_from_journal, 6);
        assert_eq!(healed.results, reference.results);
        std::fs::remove_dir_all(&dir).ok();
    }
}
