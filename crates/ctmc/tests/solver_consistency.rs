//! Cross-solver consistency: GTH (direct, stable) vs Gauss-Seidel vs
//! power iteration on randomly generated irreducible chains, plus
//! property-based tests on the builder/solver contracts.

use gprs_ctmc::{
    gth::solve_gth,
    power::solve_power,
    solver::{solve_gauss_seidel, SolveOptions},
    transitions::balance_residual,
    SparseGenerator, TripletBuilder,
};
use proptest::prelude::*;

/// Builds a random irreducible generator: a cycle backbone (guarantees
/// irreducibility) plus random extra edges.
fn random_chain(n: usize, extra_edges: &[(usize, usize, f64)]) -> SparseGenerator {
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push(i, (i + 1) % n, 1.0);
    }
    for &(i, j, r) in extra_edges {
        let (i, j) = (i % n, j % n);
        if i != j {
            b.push(i, j, r);
        }
    }
    b.build().expect("valid chain")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gauss_seidel_matches_gth(
        n in 2usize..25,
        edges in proptest::collection::vec(
            (0usize..25, 0usize..25, 0.01f64..10.0), 0..40),
    ) {
        let g = random_chain(n, &edges);
        let exact = solve_gth(&g).unwrap();
        let sol = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        for s in 0..n {
            prop_assert!((exact[s] - sol.pi[s]).abs() < 1e-7,
                "state {s}: gth={} gs={}", exact[s], sol.pi[s]);
        }
    }

    #[test]
    fn power_matches_gth(
        n in 2usize..12,
        edges in proptest::collection::vec(
            (0usize..12, 0usize..12, 0.1f64..5.0), 0..20),
    ) {
        let g = random_chain(n, &edges);
        let exact = solve_gth(&g).unwrap();
        let opts = SolveOptions::default()
            .with_tolerance(1e-9)
            .with_max_sweeps(500_000);
        let sol = solve_power(&g, None, &opts).unwrap();
        for s in 0..n {
            prop_assert!((exact[s] - sol.pi[s]).abs() < 1e-6);
        }
    }

    #[test]
    fn gth_solution_has_zero_residual(
        n in 2usize..30,
        edges in proptest::collection::vec(
            (0usize..30, 0usize..30, 0.001f64..100.0), 0..60),
    ) {
        let g = random_chain(n, &edges);
        let pi = solve_gth(&g).unwrap();
        prop_assert!(balance_residual(&g, &pi) < 1e-11);
    }

    #[test]
    fn stationarity_survives_warm_start_roundtrip(
        n in 2usize..20,
        edges in proptest::collection::vec(
            (0usize..20, 0usize..20, 0.01f64..10.0), 0..30),
    ) {
        let g = random_chain(n, &edges);
        let first = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        // Restarting from the solution must converge immediately (few sweeps).
        let second = solve_gauss_seidel(
            &g, Some(first.pi.as_slice()), &SolveOptions::default()).unwrap();
        prop_assert!(second.sweeps <= SolveOptions::default().check_every);
    }

    #[test]
    fn builder_never_loses_mass(
        n in 1usize..15,
        edges in proptest::collection::vec(
            (0usize..15, 0usize..15, 0.01f64..10.0), 0..30),
    ) {
        // Sum of all pushed rates == sum of exit rates after assembly.
        let mut b = TripletBuilder::new(n);
        let mut pushed = 0.0;
        for &(i, j, r) in &edges {
            let (i, j) = (i % n, j % n);
            if i != j {
                b.push(i, j, r);
                pushed += r;
            }
        }
        let g = b.build().unwrap();
        let total_exit: f64 = g.exit_rates().iter().sum();
        prop_assert!((pushed - total_exit).abs() < 1e-9 * pushed.max(1.0));
    }
}

#[test]
fn solvers_agree_on_mid_size_stiff_chain() {
    // A 500-state chain with three time scales, closer to the GPRS
    // model's stiffness profile.
    let n = 500;
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push(i, (i + 1) % n, if i % 3 == 0 { 1e3 } else { 1.0 });
        if i >= 2 {
            b.push(i, i - 2, 1e-3);
        }
    }
    let g = b.build().unwrap();
    let exact = solve_gth(&g).unwrap();
    let sol = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
    let mut max_rel: f64 = 0.0;
    for s in 0..n {
        if exact[s] > 1e-12 {
            max_rel = max_rel.max((exact[s] - sol.pi[s]).abs() / exact[s]);
        }
    }
    assert!(max_rel < 1e-5, "max relative error {max_rel}");
}

#[test]
fn irreducibility_check_agrees_with_gth_success() {
    let mut b = TripletBuilder::new(6);
    b.push(0, 1, 1.0);
    b.push(1, 2, 1.0);
    b.push(2, 0, 1.0);
    b.push(3, 4, 1.0);
    b.push(4, 5, 1.0);
    b.push(5, 3, 1.0);
    // Two disjoint cycles: reducible.
    let g = b.build().unwrap();
    assert!(!g.is_irreducible());
}
