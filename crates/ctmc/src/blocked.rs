//! Phase-major blocked tables and the cache-blocked MBD sweep kernel.
//!
//! [`crate::mbd::solve_mbd_projected_ws`] is matrix-free: every sweep
//! re-derives birth/death rates through virtual calls (four per level
//! per phase for the tridiagonal assembly alone) and re-enumerates the
//! phase transition structure through `for_each_phase_incoming`
//! closures. On the GPRS chain each of those calls decodes a flat phase
//! index into `(n, m, r)` with divisions and walks a branchy
//! service-rate formula — work that is identical across the tens of
//! sweeps of a solve and across the residual passes.
//!
//! [`BlockedMbd`] hoists all of it: one capture pass materializes the
//! rate tables phase-major (`birth[p * levels + l]`, contiguous per
//! phase block, matching the iterate layout) and the incoming phase
//! transitions as a small CSR. [`solve_mbd_projected_blocked_ws`] then
//! runs the same block Gauss–Seidel / Thomas sweep as the scalar kernel
//! but with every inner loop a contiguous, branch-free slice scan the
//! compiler can unroll and vectorize. The floating-point operations and
//! their order are **exactly** those of the scalar kernel, so blocked
//! and scalar solves are bit-identical — pinned by the tests below and
//! by the template-level preflights in `gprs_core`.
//!
//! Capture costs about one sweep's worth of rate evaluations and is
//! repaid within the first sweep; for repeated same-shape solves the
//! tables are refilled in place and nothing is reallocated.

// Indexed loops mirror the scalar kernel they must match bit-for-bit.
#![allow(clippy::needless_range_loop)]

use crate::error::CtmcError;
use crate::mbd::{validate_phase_marginal, ModulatedBirthDeath};
use crate::solver::{HealthGuard, SolveOptions, SolveStats, SolveWorkspace, WarmInit};

/// Whether the blocked MBD kernel is enabled for template solves.
///
/// Controlled by the `GPRS_BLOCKED_KERNEL` environment variable: unset
/// or any value other than `0` / `false` / `off` / `no` (case
/// insensitive) means enabled. Since blocked and scalar kernels are
/// bit-identical this toggle never changes results — it exists so CI
/// can run the full test matrix over both code paths and so regressions
/// can be bisected to layout vs. arithmetic.
pub fn blocked_kernel_enabled() -> bool {
    match std::env::var("GPRS_BLOCKED_KERNEL") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// Phase-major blocked rate tables of a [`ModulatedBirthDeath`] chain.
///
/// Built by [`capture`](Self::capture) from any MBD implementation and
/// consumed by [`solve_mbd_projected_blocked_ws`] /
/// [`solve_mbd_blocked_ws`]. Also implements [`ModulatedBirthDeath`]
/// itself (pure table lookups), so anything generic over the trait can
/// run on the captured tables.
#[derive(Debug, Clone, Default)]
pub struct BlockedMbd {
    phases: usize,
    levels: usize,
    /// `birth[p * levels + l]` — contiguous per phase block.
    birth: Vec<f64>,
    /// `death[p * levels + l]` — contiguous per phase block.
    death: Vec<f64>,
    /// Per-phase exit rate (`phase_exit_rate`), captured once.
    exit: Vec<f64>,
    /// Incoming phase-transition CSR: sources of phase `p` are
    /// `in_src[in_ptr[p]..in_ptr[p + 1]]`, in exactly the
    /// `for_each_phase_incoming` visitation order.
    in_ptr: Vec<usize>,
    in_src: Vec<u32>,
    in_rate: Vec<f64>,
}

impl BlockedMbd {
    /// An empty table set; buffers grow on first capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of phases captured (0 before the first capture).
    pub fn num_phases(&self) -> usize {
        self.phases
    }

    /// Number of levels captured (0 before the first capture).
    pub fn num_levels(&self) -> usize {
        self.levels
    }

    /// (Re)captures the rate tables from `gen`. Allocations are reused
    /// across captures, so refilling for a new parameter point on the
    /// same shape allocates nothing. Cost is one rate evaluation per
    /// table entry — about one sweep's worth of the work it then saves
    /// on every sweep.
    pub fn capture<G: ModulatedBirthDeath + ?Sized>(&mut self, gen: &G) {
        let p_count = gen.num_phases();
        let l_count = gen.num_levels();
        assert!(
            p_count <= u32::MAX as usize,
            "phase count exceeds u32 source index range"
        );
        self.phases = p_count;
        self.levels = l_count;

        let n = p_count * l_count;
        self.birth.clear();
        self.birth.reserve(n);
        self.death.clear();
        self.death.reserve(n);
        for p in 0..p_count {
            for l in 0..l_count {
                self.birth.push(gen.birth_rate(p, l));
                self.death.push(gen.death_rate(p, l));
            }
        }

        self.exit.clear();
        self.exit.reserve(p_count);
        for p in 0..p_count {
            self.exit.push(gen.phase_exit_rate(p));
        }

        self.in_ptr.clear();
        self.in_ptr.reserve(p_count + 1);
        self.in_src.clear();
        self.in_rate.clear();
        self.in_ptr.push(0);
        for p in 0..p_count {
            gen.for_each_phase_incoming(p, &mut |q, rate| {
                self.in_src.push(q as u32);
                self.in_rate.push(rate);
            });
            self.in_ptr.push(self.in_src.len());
        }
    }

    /// Re-evaluates only the **phase-coupling rates** (the incoming
    /// phase-transition CSR values and the per-phase exit rates) from
    /// `gen`, keeping the captured birth/death tables and the CSR
    /// pattern untouched.
    ///
    /// This is the cheap recapture for fixed-point iterations that
    /// re-solve the *same* chain under moving phase-arrival rates (the
    /// cluster handover balance): between outer iterations only the
    /// handover arrival terms move, and those enter exclusively through
    /// phase transitions — births (packet arrivals) and deaths (packet
    /// services) do not depend on them. The caller guarantees that
    /// contract; under it the refreshed tables are **bit-identical** to
    /// a full [`capture`](Self::capture) of the same generator, at a
    /// fraction of the rate evaluations.
    ///
    /// # Panics
    ///
    /// If no capture happened yet, or `gen`'s phase dimensions or
    /// incoming-edge pattern do not match the captured ones.
    pub fn recapture_phase_rates<G: ModulatedBirthDeath + ?Sized>(&mut self, gen: &G) {
        assert!(
            self.phases == gen.num_phases() && self.levels == gen.num_levels(),
            "recapture_phase_rates: phase table shape mismatch"
        );
        for p in 0..self.phases {
            self.exit[p] = gen.phase_exit_rate(p);
            let mut e = self.in_ptr[p];
            let end = self.in_ptr[p + 1];
            gen.for_each_phase_incoming(p, &mut |q, rate| {
                assert!(
                    e < end && self.in_src[e] as usize == q,
                    "recapture_phase_rates: incoming-edge pattern changed"
                );
                self.in_rate[e] = rate;
                e += 1;
            });
            assert!(
                e == end,
                "recapture_phase_rates: incoming-edge count changed"
            );
        }
    }

    /// Exact relative L1 balance residual of an arbitrary iterate `pi`
    /// against the captured chain — bit-identical to
    /// [`crate::mbd::mbd_residual_of`] on the source generator. This is
    /// the verification half of the predict-and-verify surrogate:
    /// `inflow` is caller-owned scratch so the check allocates nothing.
    pub fn residual(&self, pi: &[f64], inflow: &mut Vec<f64>) -> f64 {
        let p_count = self.phases;
        let l_count = self.levels;
        inflow.resize(l_count, 0.0);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for p in 0..p_count {
            let base = p * l_count;
            inflow.fill(0.0);
            for e in self.in_ptr[p]..self.in_ptr[p + 1] {
                let rate = self.in_rate[e];
                let qbase = self.in_src[e] as usize * l_count;
                for (l, x) in inflow.iter_mut().enumerate() {
                    *x += rate * pi[qbase + l];
                }
            }
            let brow = &self.birth[base..base + l_count];
            let drow = &self.death[base..base + l_count];
            for l in 0..l_count {
                let exit = self.exit[p] + brow[l] + drow[l];
                let mut inf = inflow[l];
                if l > 0 {
                    inf += pi[base + l - 1] * brow[l - 1];
                }
                if l + 1 < l_count {
                    inf += pi[base + l + 1] * drow[l + 1];
                }
                num += (inf - pi[base + l] * exit).abs();
                den += pi[base + l] * exit;
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

impl ModulatedBirthDeath for BlockedMbd {
    fn num_phases(&self) -> usize {
        self.phases
    }
    fn num_levels(&self) -> usize {
        self.levels
    }
    fn birth_rate(&self, phase: usize, level: usize) -> f64 {
        self.birth[phase * self.levels + level]
    }
    fn death_rate(&self, phase: usize, level: usize) -> f64 {
        self.death[phase * self.levels + level]
    }
    fn for_each_phase_outgoing(&self, phase: usize, visit: &mut dyn FnMut(usize, f64)) {
        // The capture stores incoming structure; outgoing edges of `p`
        // are the incoming edges of every phase that lists `p` as a
        // source. Only used by generic (non-hot) trait consumers.
        for q in 0..self.phases {
            for e in self.in_ptr[q]..self.in_ptr[q + 1] {
                if self.in_src[e] as usize == phase {
                    visit(q, self.in_rate[e]);
                }
            }
        }
    }
    fn for_each_phase_incoming(&self, phase: usize, visit: &mut dyn FnMut(usize, f64)) {
        for e in self.in_ptr[phase]..self.in_ptr[phase + 1] {
            visit(self.in_src[e] as usize, self.in_rate[e]);
        }
    }
    fn phase_exit_rate(&self, phase: usize) -> f64 {
        self.exit[phase]
    }
}

/// [`crate::mbd::solve_mbd_projected_ws`] over captured blocked tables:
/// the same block Gauss–Seidel / Thomas iteration, with every rate
/// lookup a contiguous slice read instead of a virtual call. The
/// floating-point operations and their order are exactly the scalar
/// kernel's, so results are **bit-identical** (sweep count, residual
/// bits, iterate bits).
///
/// # Errors
///
/// As [`crate::mbd::solve_mbd_projected_ws`].
pub fn solve_mbd_projected_blocked_ws(
    blocked: &BlockedMbd,
    phase_marginal: &[f64],
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    validate_phase_marginal(blocked.phases, phase_marginal)?;
    solve_blocked_inner(
        blocked,
        Some(phase_marginal),
        WarmInit::Copy(warm_start),
        opts,
        ws,
    )
}

/// [`solve_mbd_projected_blocked_ws`] seeded **in place**: the warm
/// start is whatever the caller staged in `ws.pi()` (via
/// [`SolveWorkspace::pi_mut`]) — normalized and iterated on without the
/// copy. Bit-identical to passing the same vector through
/// [`solve_mbd_projected_blocked_ws`], and the blocked twin of
/// [`crate::mbd::solve_mbd_projected_inplace_ws`].
///
/// # Errors
///
/// As [`crate::mbd::solve_mbd_projected_inplace_ws`].
pub fn solve_mbd_projected_blocked_inplace_ws(
    blocked: &BlockedMbd,
    phase_marginal: &[f64],
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    validate_phase_marginal(blocked.phases, phase_marginal)?;
    solve_blocked_inner(blocked, Some(phase_marginal), WarmInit::InPlace, opts, ws)
}

/// [`crate::mbd::solve_mbd_ws`] over captured blocked tables (no
/// marginal projection); bit-identical to the scalar kernel.
///
/// # Errors
///
/// As [`crate::mbd::solve_mbd_ws`].
pub fn solve_mbd_blocked_ws(
    blocked: &BlockedMbd,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    solve_blocked_inner(blocked, None, WarmInit::Copy(warm_start), opts, ws)
}

/// The blocked twin of `solve_mbd_inner`: identical control flow and
/// arithmetic, table reads in place of trait calls. Any edit here must
/// be mirrored there (and vice versa) — the bitwise tests below and the
/// template preflights in `gprs_core` enforce the pairing.
fn solve_blocked_inner(
    b: &BlockedMbd,
    phase_marginal: Option<&[f64]>,
    warm_start: WarmInit<'_>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    let p_count = b.phases;
    let l_count = b.levels;
    let n = p_count * l_count;
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }

    ws.seed_pi(n, warm_start)?;
    let SolveWorkspace {
        pi,
        exit: phase_exit,
        rhs,
        diag,
        cprime,
        xcol,
        inflow,
    } = ws;

    phase_exit.resize(p_count, 0.0);
    phase_exit.copy_from_slice(&b.exit);

    rhs.resize(l_count, 0.0);
    diag.resize(l_count, 0.0);
    cprime.resize(l_count, 0.0);
    xcol.resize(l_count, 0.0);
    let omega = opts.sor_omega;

    let mut guard = HealthGuard::new(opts);
    let mut sweeps = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_evals = 0usize;
    let mut converged: Option<SolveStats> = None;

    'sweep: while sweeps < opts.max_sweeps {
        let forward = sweeps.is_multiple_of(2);
        for step in 0..p_count {
            let p = if forward { step } else { p_count - 1 - step };
            let d_p = phase_exit[p];
            // Gather inflow from other phases: contiguous source rows,
            // fixed-width level runs — the loop the compiler vectorizes.
            for x in rhs.iter_mut() {
                *x = 0.0;
            }
            for e in b.in_ptr[p]..b.in_ptr[p + 1] {
                let rate = b.in_rate[e];
                let qbase = b.in_src[e] as usize * l_count;
                for (l, x) in rhs.iter_mut().enumerate() {
                    *x += rate * pi[qbase + l];
                }
            }

            if d_p <= 0.0 {
                if p_count > 1 {
                    return Err(CtmcError::InvalidGenerator {
                        reason: format!("phase {p} has zero exit rate in a multi-phase chain"),
                    });
                }
                // Single birth-death chain: product form, as in the
                // scalar kernel's `solve_single_birth_death`.
                pi[0] = 1.0;
                let mut total = 1.0;
                for l in 1..l_count {
                    let br = b.birth[l - 1];
                    let dr = b.death[l];
                    pi[l] = if dr > 0.0 { pi[l - 1] * br / dr } else { 0.0 };
                    total += pi[l];
                }
                for x in pi.iter_mut() {
                    *x /= total;
                }
                converged = Some(SolveStats {
                    sweeps: 1,
                    residual: 0.0,
                    residual_evals,
                });
                break 'sweep;
            }

            let base = p * l_count;
            let brow = &b.birth[base..base + l_count];
            let drow = &b.death[base..base + l_count];
            for l in 0..l_count {
                diag[l] = d_p + brow[l] + drow[l];
            }
            // Thomas forward elimination over the contiguous rows.
            let mut beta = diag[0];
            cprime[0] = -drow[1.min(l_count - 1)] / beta;
            rhs[0] /= beta;
            for l in 1..l_count {
                let a_l = -brow[l - 1]; // sub-diagonal
                beta = diag[l] - a_l * cprime[l - 1];
                let c_l = if l + 1 < l_count { -drow[l + 1] } else { 0.0 };
                cprime[l] = c_l / beta;
                rhs[l] = (rhs[l] - a_l * rhs[l - 1]) / beta;
            }
            // Back substitution, then (block-)SOR blend into pi.
            xcol[l_count - 1] = rhs[l_count - 1].max(0.0);
            for l in (0..l_count - 1).rev() {
                xcol[l] = (rhs[l] - cprime[l] * xcol[l + 1]).max(0.0);
            }
            if omega == 1.0 {
                pi[base..base + l_count].copy_from_slice(xcol);
            } else {
                for l in 0..l_count {
                    let v = (1.0 - omega) * pi[base + l] + omega * xcol[l];
                    pi[base + l] = v.max(0.0);
                }
            }
        }

        if let Some(marginal) = phase_marginal {
            for p in 0..p_count {
                let base = p * l_count;
                let col = &mut pi[base..base + l_count];
                let mass: f64 = col.iter().sum();
                if mass > 0.0 {
                    let scale = marginal[p] / mass;
                    for x in col {
                        *x *= scale;
                    }
                } else {
                    let v = marginal[p] / l_count as f64;
                    for x in col {
                        *x = v;
                    }
                }
            }
        } else {
            let total: f64 = pi.iter().sum();
            if !total.is_finite() || total <= 0.0 {
                return Err(CtmcError::Diverged {
                    iterations: sweeps + 1,
                    residual: f64::NAN,
                });
            }
            let inv = 1.0 / total;
            for x in pi.iter_mut() {
                *x *= inv;
            }
        }
        sweeps += 1;

        if sweeps.is_multiple_of(opts.check_every.clamp(1, 4)) || sweeps == opts.max_sweeps {
            residual = b.residual(pi, inflow);
            residual_evals += 1;
            guard.observe(sweeps, residual)?;
            if residual <= opts.tolerance {
                converged = Some(SolveStats {
                    sweeps,
                    residual,
                    residual_evals,
                });
                break 'sweep;
            }
            if guard.out_of_time() {
                break 'sweep;
            }
        }
    }

    if let Some(stats) = converged {
        ws.normalize_pi();
        return Ok(stats);
    }
    let exact = if residual.is_finite() {
        residual
    } else {
        b.residual(&ws.pi, &mut ws.inflow)
    };
    Err(HealthGuard::budget_error(sweeps, exact, opts.tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbd::tests::{exact_phase_marginal, TableMbd};
    use crate::mbd::{mbd_residual_of, solve_mbd_projected_ws, solve_mbd_ws};

    fn assert_bitwise_eq(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: state {i} ({x} vs {y})");
        }
    }

    #[test]
    fn capture_reproduces_the_source_tables() {
        let mbd = TableMbd::random(6, 9, 17);
        let mut b = BlockedMbd::new();
        b.capture(&mbd);
        assert_eq!(b.num_phases(), 6);
        assert_eq!(b.num_levels(), 9);
        for p in 0..6 {
            assert_eq!(
                ModulatedBirthDeath::phase_exit_rate(&b, p).to_bits(),
                mbd.phase_exit_rate(p).to_bits()
            );
            for l in 0..9 {
                assert_eq!(b.birth_rate(p, l).to_bits(), mbd.birth_rate(p, l).to_bits());
                assert_eq!(b.death_rate(p, l).to_bits(), mbd.death_rate(p, l).to_bits());
            }
            let mut from_b = Vec::new();
            let mut from_m = Vec::new();
            b.for_each_phase_incoming(p, &mut |q, r| from_b.push((q, r.to_bits())));
            mbd.for_each_phase_incoming(p, &mut |q, r| from_m.push((q, r.to_bits())));
            assert_eq!(from_b, from_m, "incoming edges of phase {p}");
        }
    }

    #[test]
    fn partial_recapture_is_bitwise_equal_to_full_capture() {
        // Moving only the phase-coupling rates (the handover-balance
        // pattern): a recapture_phase_rates refresh must reproduce a
        // fresh full capture bit for bit — tables and solves alike.
        for (seed, phases, levels) in [(3u64, 6, 9), (11, 8, 14), (29, 4, 25)] {
            let base = TableMbd::random(phases, levels, seed);
            let mut partial = BlockedMbd::new();
            partial.capture(&base);
            for factor in [0.25, 1.9, 0.4, 1.0] {
                let moved = base.with_scaled_phase_rates(factor);
                let mut full = BlockedMbd::new();
                full.capture(&moved);
                partial.recapture_phase_rates(&moved);

                for p in 0..phases {
                    assert_eq!(
                        ModulatedBirthDeath::phase_exit_rate(&partial, p).to_bits(),
                        ModulatedBirthDeath::phase_exit_rate(&full, p).to_bits(),
                        "seed {seed} factor {factor} exit {p}"
                    );
                    let mut from_partial = Vec::new();
                    let mut from_full = Vec::new();
                    partial.for_each_phase_incoming(p, &mut |q, r| {
                        from_partial.push((q, r.to_bits()))
                    });
                    full.for_each_phase_incoming(p, &mut |q, r| from_full.push((q, r.to_bits())));
                    assert_eq!(
                        from_partial, from_full,
                        "seed {seed} factor {factor} phase {p}"
                    );
                    for l in 0..levels {
                        assert_eq!(
                            partial.birth_rate(p, l).to_bits(),
                            full.birth_rate(p, l).to_bits()
                        );
                        assert_eq!(
                            partial.death_rate(p, l).to_bits(),
                            full.death_rate(p, l).to_bits()
                        );
                    }
                }

                let marginal = exact_phase_marginal(&moved);
                let opts = SolveOptions::default();
                let mut ws_p = SolveWorkspace::new();
                let mut ws_f = SolveWorkspace::new();
                let sp =
                    solve_mbd_projected_blocked_ws(&partial, &marginal, None, &opts, &mut ws_p)
                        .unwrap();
                let sf = solve_mbd_projected_blocked_ws(&full, &marginal, None, &opts, &mut ws_f)
                    .unwrap();
                assert_eq!(sp.sweeps, sf.sweeps);
                assert_eq!(sp.residual.to_bits(), sf.residual.to_bits());
                assert_bitwise_eq(
                    ws_p.pi(),
                    ws_f.pi(),
                    &format!("seed {seed} factor {factor}"),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "phase table shape mismatch")]
    fn partial_recapture_rejects_shape_changes() {
        let mbd = TableMbd::random(5, 8, 17);
        let other = TableMbd::random(6, 8, 17);
        let mut b = BlockedMbd::new();
        b.capture(&mbd);
        b.recapture_phase_rates(&other);
    }

    #[test]
    fn blocked_solves_are_bitwise_equal_to_scalar() {
        for (seed, phases, levels, omega) in [
            (1u64, 5, 8, 1.0),
            (7, 8, 30, 1.0),
            (42, 6, 10, 0.8),
            (99, 3, 12, 1.2),
        ] {
            let mbd = TableMbd::random(phases, levels, seed);
            let marginal = exact_phase_marginal(&mbd);
            let mut b = BlockedMbd::new();
            b.capture(&mbd);
            let opts = SolveOptions::default().with_sor(omega);

            // Projected, cold.
            let mut ws_s = SolveWorkspace::new();
            let mut ws_b = SolveWorkspace::new();
            let s = solve_mbd_projected_ws(&mbd, &marginal, None, &opts, &mut ws_s).unwrap();
            let bl = solve_mbd_projected_blocked_ws(&b, &marginal, None, &opts, &mut ws_b).unwrap();
            assert_eq!(s.sweeps, bl.sweeps, "seed {seed}");
            assert_eq!(s.residual.to_bits(), bl.residual.to_bits(), "seed {seed}");
            assert_eq!(s.residual_evals, bl.residual_evals, "seed {seed}");
            assert_bitwise_eq(ws_s.pi(), ws_b.pi(), &format!("projected cold seed {seed}"));

            // Projected, warm from the solution (checks the warm path too).
            let warm = ws_s.pi().to_vec();
            let s2 =
                solve_mbd_projected_ws(&mbd, &marginal, Some(&warm), &opts, &mut ws_s).unwrap();
            let b2 = solve_mbd_projected_blocked_ws(&b, &marginal, Some(&warm), &opts, &mut ws_b)
                .unwrap();
            assert_eq!(s2.sweeps, b2.sweeps);
            assert_eq!(s2.residual.to_bits(), b2.residual.to_bits());
            assert_bitwise_eq(ws_s.pi(), ws_b.pi(), &format!("projected warm seed {seed}"));

            // Unprojected.
            let s3 = solve_mbd_ws(&mbd, None, &opts, &mut ws_s).unwrap();
            let b3 = solve_mbd_blocked_ws(&b, None, &opts, &mut ws_b).unwrap();
            assert_eq!(s3.sweeps, b3.sweeps);
            assert_eq!(s3.residual.to_bits(), b3.residual.to_bits());
            assert_bitwise_eq(ws_s.pi(), ws_b.pi(), &format!("unprojected seed {seed}"));
        }
    }

    #[test]
    fn blocked_residual_matches_scalar_bitwise() {
        let mbd = TableMbd::random(7, 11, 23);
        let mut b = BlockedMbd::new();
        b.capture(&mbd);
        // An arbitrary (unconverged) iterate: uniform plus a ramp.
        let n = 7 * 11;
        let pi: Vec<f64> = (0..n).map(|i| 1.0 / n as f64 + i as f64 * 1e-4).collect();
        let mut inflow = Vec::new();
        let blocked = b.residual(&pi, &mut inflow);
        let scalar = mbd_residual_of(&mbd, &pi);
        assert_eq!(blocked.to_bits(), scalar.to_bits());
    }

    #[test]
    fn recapture_reuses_allocations_and_tracks_new_rates() {
        let mbd1 = TableMbd::random(5, 8, 3);
        let mbd2 = TableMbd::random(5, 8, 4);
        let mut b = BlockedMbd::new();
        b.capture(&mbd1);
        b.capture(&mbd2);
        for p in 0..5 {
            for l in 0..8 {
                assert_eq!(
                    b.birth_rate(p, l).to_bits(),
                    mbd2.birth_rate(p, l).to_bits()
                );
            }
        }
        let marginal = exact_phase_marginal(&mbd2);
        let opts = SolveOptions::default();
        let mut ws_s = SolveWorkspace::new();
        let mut ws_b = SolveWorkspace::new();
        let s = solve_mbd_projected_ws(&mbd2, &marginal, None, &opts, &mut ws_s).unwrap();
        let bl = solve_mbd_projected_blocked_ws(&b, &marginal, None, &opts, &mut ws_b).unwrap();
        assert_eq!(s.sweeps, bl.sweeps);
        assert_bitwise_eq(ws_s.pi(), ws_b.pi(), "recapture");
    }

    #[test]
    fn env_toggle_parses_disabling_values() {
        // Can't set the process env safely under the test harness;
        // exercise the default path only (unset or enabled in CI).
        let _ = blocked_kernel_enabled();
    }
}
