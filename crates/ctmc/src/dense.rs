//! A minimal row-major dense matrix used by the GTH direct solver and by
//! tests. Not intended as a general linear-algebra type.

/// Row-major dense square matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] += v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_add() {
        let mut m = DenseMatrix::zeros(3);
        assert_eq!(m.dim(), 3);
        m.set(0, 1, 2.0);
        m.add(0, 1, 0.5);
        assert_eq!(m.get(0, 1), 2.5);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.row(0), &[0.0, 2.5, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.get(2, 0);
    }
}
