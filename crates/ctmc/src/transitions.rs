//! Matrix-free access traits for CTMC generators.
//!
//! Large chains (the paper's Fig. 10 configuration has ~2·10⁷ states) are
//! solved without ever assembling a sparse matrix: the model implements
//! these traits and the solvers walk transitions on the fly.

use crate::error::CtmcError;

/// Read access to the outgoing transitions of a CTMC generator.
///
/// Implementations must only report *off-diagonal* transitions with
/// strictly positive rates; the diagonal is implied by the exit rates.
/// Reporting the same target more than once is allowed (rates add up).
pub trait Transitions {
    /// Number of states in the chain. States are indexed `0..num_states()`.
    fn num_states(&self) -> usize;

    /// Visit every outgoing transition `(target, rate)` of `state`.
    ///
    /// `rate` must be `> 0` and `target != state`.
    fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64));

    /// Total exit rate of `state` (the negated diagonal entry of `Q`).
    ///
    /// The default implementation sums the outgoing rates; implementors
    /// with a cheaper closed form may override it.
    fn exit_rate(&self, state: usize) -> f64 {
        let mut total = 0.0;
        self.for_each_outgoing(state, &mut |_, rate| total += rate);
        total
    }
}

/// Generators that can also enumerate *incoming* transitions.
///
/// Gauss–Seidel iterates `π_j ← (Σ_{i≠j} π_i q_ij) / exit(j)`, which needs
/// column access to `Q`. Sparse matrices store the transpose; matrix-free
/// models hand-derive the reverse of each transition rule (and should test
/// the two against each other — see `gprs-core`'s property tests).
pub trait IncomingTransitions: Transitions {
    /// Visit every incoming transition `(source, rate)` into `state`,
    /// i.e. every pair with `q_{source, state} = rate > 0`.
    fn for_each_incoming(&self, state: usize, visit: &mut dyn FnMut(usize, f64));
}

/// Computes the relative L1 balance residual `‖πQ‖₁ / ‖π ∘ exit‖₁`.
///
/// A stationary vector has residual 0; the solvers use this as their
/// convergence criterion. `pi` need not be normalized.
///
/// # Panics
///
/// Panics if `pi.len() != gen.num_states()`. The solvers validate
/// dimensions at their entry points and use [`try_balance_residual`]
/// internally, so a mismatched vector surfaces as a structured
/// [`CtmcError::DimensionMismatch`] before any sweep runs — this
/// asserting variant is the convenience API for callers who already
/// hold a vector of known-correct length.
pub fn balance_residual<G: Transitions + ?Sized>(gen: &G, pi: &[f64]) -> f64 {
    match try_balance_residual(gen, pi) {
        Ok(r) => r,
        Err(_) => panic!(
            "pi length must match state count ({} vs {})",
            pi.len(),
            gen.num_states()
        ),
    }
}

/// Fallible form of [`balance_residual`]: returns
/// [`CtmcError::DimensionMismatch`] instead of panicking when `pi` has
/// the wrong length.
///
/// # Errors
///
/// [`CtmcError::DimensionMismatch`] if `pi.len() != gen.num_states()`.
pub fn try_balance_residual<G: Transitions + ?Sized>(
    gen: &G,
    pi: &[f64],
) -> Result<f64, CtmcError> {
    if pi.len() != gen.num_states() {
        return Err(CtmcError::DimensionMismatch {
            expected: gen.num_states(),
            actual: pi.len(),
        });
    }
    let n = gen.num_states();
    let mut flow = vec![0.0f64; n];
    let mut scale = 0.0f64;
    for i in 0..n {
        let p = pi[i];
        if p == 0.0 {
            continue;
        }
        let mut exit = 0.0;
        gen.for_each_outgoing(i, &mut |j, rate| {
            flow[j] += p * rate;
            exit += rate;
        });
        flow[i] -= p * exit;
        scale += p * exit;
    }
    let num: f64 = flow.iter().map(|x| x.abs()).sum();
    Ok(if scale == 0.0 {
        // No transitions at all: any distribution is stationary.
        0.0
    } else {
        num / scale
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 3-state cycle with unit rates.
    struct Cycle;

    impl Transitions for Cycle {
        fn num_states(&self) -> usize {
            3
        }
        fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
            visit((state + 1) % 3, 1.0);
        }
    }

    impl IncomingTransitions for Cycle {
        fn for_each_incoming(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
            visit((state + 2) % 3, 1.0);
        }
    }

    #[test]
    fn default_exit_rate_sums_outgoing() {
        assert_eq!(Cycle.exit_rate(0), 1.0);
        assert_eq!(Cycle.exit_rate(2), 1.0);
    }

    #[test]
    fn uniform_is_stationary_for_cycle() {
        let pi = [1.0 / 3.0; 3];
        assert!(balance_residual(&Cycle, &pi) < 1e-15);
    }

    #[test]
    fn non_stationary_has_positive_residual() {
        let pi = [0.6, 0.3, 0.1];
        assert!(balance_residual(&Cycle, &pi) > 0.1);
    }

    #[test]
    #[should_panic(expected = "pi length")]
    fn residual_panics_on_dimension_mismatch() {
        let pi = [0.5, 0.5];
        let _ = balance_residual(&Cycle, &pi);
    }

    #[test]
    fn try_residual_reports_dimension_mismatch() {
        let pi = [0.5, 0.5];
        assert_eq!(
            try_balance_residual(&Cycle, &pi),
            Err(CtmcError::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        );
        let ok = try_balance_residual(&Cycle, &[1.0 / 3.0; 3]).unwrap();
        assert!(ok < 1e-15);
    }
}
