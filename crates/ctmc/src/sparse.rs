//! Sparse (CSR) generator matrices and the triplet builder that assembles
//! them.
//!
//! Assembly is a single validation-and-build pass: triplets are
//! validated while the sort runs (in parallel chunks for large inputs —
//! see [`crate::parallel`]), then merged straight into the CSR arrays
//! and their transpose. Large matrix-free models can also be assembled
//! with [`SparseGenerator::from_transitions_par`], which enumerates
//! row ranges across threads.

use crate::error::CtmcError;
use crate::transitions::{IncomingTransitions, Transitions};
use gprs_exec::{num_threads, par_map_chunks_mut, par_map_ranges, par_map_vec};

/// Triplet counts below this stay on the single-threaded sort path.
const PAR_SORT_MIN: usize = 1 << 16;

/// Accumulates `(source, target, rate)` triplets and assembles a
/// [`SparseGenerator`].
///
/// Duplicate `(source, target)` entries are summed. Diagonal entries are
/// rejected at [`build`](TripletBuilder::build) time: the diagonal of a
/// generator is implied by its off-diagonal rows.
///
/// # Example
///
/// ```
/// use gprs_ctmc::TripletBuilder;
///
/// let mut b = TripletBuilder::new(3);
/// b.push(0, 1, 2.0);
/// b.push(1, 2, 1.0);
/// b.push(2, 0, 0.5);
/// let gen = b.build()?;
/// assert_eq!(gen.num_nonzeros(), 3);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a chain with `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (state indices are stored as
    /// `u32`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "state count {n} exceeds u32 range");
        TripletBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `cap` triplets.
    ///
    /// # Panics
    ///
    /// As [`new`](TripletBuilder::new).
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        assert!(n <= u32::MAX as usize, "state count {n} exceeds u32 range");
        TripletBuilder {
            n,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Records the transition `source -> target` at `rate`.
    ///
    /// Rates of exactly zero are silently dropped (convenient when a rate
    /// formula can evaluate to zero).
    ///
    /// Bounds are checked here only in debug builds — `push` sits on the
    /// hot path of model enumeration. Release builds validate every
    /// triplet once, at [`build`](TripletBuilder::build) time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `source` or `target` is out of bounds.
    #[inline]
    pub fn push(&mut self, source: usize, target: usize, rate: f64) {
        debug_assert!(
            source < self.n,
            "source {source} out of bounds ({})",
            self.n
        );
        debug_assert!(
            target < self.n,
            "target {target} out of bounds ({})",
            self.n
        );
        if rate == 0.0 {
            return;
        }
        // Saturating narrowing: an index beyond u32 becomes u32::MAX,
        // which is always >= n (builders cap n at u32::MAX), so the
        // build-time validation still rejects it — a plain `as` cast
        // could alias a wild index back into bounds.
        let source = source.min(u32::MAX as usize) as u32;
        let target = target.min(u32::MAX as usize) as u32;
        self.entries.push((source, target, rate));
    }

    /// Number of recorded (nonzero) triplets so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assembles the CSR generator, summing duplicates.
    ///
    /// Validation is fused into assembly: each triplet is checked during
    /// the (parallel, for large inputs) sort pass, rather than in a
    /// separate scan before a second assembly scan.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] for `n == 0`, and
    /// [`CtmcError::InvalidGenerator`] if any rate is negative,
    /// non-finite, out of bounds, or sits on the diagonal.
    pub fn build(self) -> Result<SparseGenerator, CtmcError> {
        SparseGenerator::try_from_triplets(self.n, self.entries)
    }
}

/// Checks one triplet slice; returns the first defect found.
fn validate_triplets(n: usize, entries: &[(u32, u32, f64)]) -> Result<(), CtmcError> {
    for &(i, j, rate) in entries {
        if i as usize >= n || j as usize >= n {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("transition {i} -> {j} out of bounds (n = {n})"),
            });
        }
        if i == j {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("diagonal entry at state {i}"),
            });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("rate {rate} on transition {i} -> {j}"),
            });
        }
    }
    Ok(())
}

/// Sorts triplets by `(row, col)`, validating each entry exactly once
/// along the way. Large inputs sort in parallel chunks which are then
/// merged pairwise across threads.
fn sort_and_validate(
    n: usize,
    mut entries: Vec<(u32, u32, f64)>,
    threads: usize,
) -> Result<Vec<(u32, u32, f64)>, CtmcError> {
    if threads <= 1 || entries.len() < PAR_SORT_MIN {
        validate_triplets(n, &entries)?;
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        return Ok(entries);
    }

    // Chunk pass: validate + sort each chunk concurrently.
    let chunk = entries.len().div_ceil(threads);
    let results = par_map_chunks_mut(&mut entries, threads, |_, ch| {
        let r = validate_triplets(n, ch);
        if r.is_ok() {
            ch.sort_unstable_by_key(|e| (e.0, e.1));
        }
        r
    });
    results.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Pairwise merge rounds until a single sorted run remains.
    let mut runs: Vec<Vec<(u32, u32, f64)>> = entries.chunks(chunk).map(<[_]>::to_vec).collect();
    drop(entries);
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = par_map_vec(pairs, threads, |(a, b)| match b {
            None => a,
            Some(b) => merge_sorted(a, b),
        });
    }
    Ok(runs.pop().unwrap_or_default())
}

/// Enumerates (and validates) the outgoing triplets of a row range of a
/// matrix-free model.
fn enumerate_rows<G: Transitions + ?Sized>(
    gen: &G,
    rows: std::ops::Range<usize>,
) -> Result<Vec<(u32, u32, f64)>, CtmcError> {
    let n = gen.num_states();
    let mut out = Vec::new();
    for i in rows {
        let mut bad: Option<String> = None;
        gen.for_each_outgoing(i, &mut |j, rate| {
            if j >= n || j == i || !rate.is_finite() || rate < 0.0 {
                bad = Some(format!("transition {i} -> {j} with rate {rate}"));
            } else if rate > 0.0 {
                out.push((i as u32, j as u32, rate));
            }
        });
        if let Some(reason) = bad {
            return Err(CtmcError::InvalidGenerator { reason });
        }
    }
    Ok(out)
}

fn merge_sorted(a: Vec<(u32, u32, f64)>, b: Vec<(u32, u32, f64)>) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        // `<=` keeps the earlier run's duplicates first (stable merge).
        if (a[ia].0, a[ia].1) <= (b[ib].0, b[ib].1) {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

/// A CTMC generator stored in compressed sparse row form, together with
/// its transpose (for incoming-transition access) and per-state exit
/// rates.
///
/// Construct via [`TripletBuilder`] or [`SparseGenerator::from_transitions`].
#[derive(Debug, Clone)]
pub struct SparseGenerator {
    n: usize,
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    val: Vec<f64>,
    trow_ptr: Vec<usize>,
    tcol: Vec<u32>,
    tval: Vec<f64>,
    exit: Vec<f64>,
    /// CSR slot `k` scatters to transpose slot `tperm[k]` — precomputed
    /// so [`refill_values`](Self::refill_values) can rebuild the
    /// transpose without re-deriving the counting sort (and without
    /// allocating a cursor array).
    tperm: Vec<u32>,
}

impl SparseGenerator {
    /// Validates, sorts (in parallel for large inputs), deduplicates and
    /// assembles triplets into CSR plus transpose — one logical pass per
    /// triplet instead of the historical validate-scan followed by an
    /// assembly re-scan.
    fn try_from_triplets(n: usize, entries: Vec<(u32, u32, f64)>) -> Result<Self, CtmcError> {
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let sorted = sort_and_validate(n, entries, num_threads())?;
        Ok(Self::assemble_sorted(n, sorted))
    }

    /// Assembles already-sorted, already-validated triplets.
    fn assemble_sorted(n: usize, sorted: Vec<(u32, u32, f64)>) -> Self {
        // Single merge pass: deduplicate while filling the CSR arrays
        // and the transpose's column counts.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut val: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut trow_ptr = vec![0usize; n + 1];
        let mut last: Option<(u32, u32)> = None;
        for (i, j, r) in sorted {
            if last == Some((i, j)) {
                // Duplicate (row, col): merge into the previous entry.
                *val.last_mut().expect("duplicate follows an entry") += r;
                continue;
            }
            last = Some((i, j));
            row_ptr[i as usize + 1] += 1;
            trow_ptr[j as usize + 1] += 1;
            col.push(j);
            val.push(r);
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
            trow_ptr[i + 1] += trow_ptr[i];
        }

        // Exit rates as row sums over the *merged* values, in column
        // order — the same association refill_values (and its rollback)
        // uses, so a refill reproduces assembly's exit rates bit for
        // bit even when a row holds merged duplicate entries.
        let mut exit = vec![0.0f64; n];
        for (i, e) in exit.iter_mut().enumerate() {
            *e = val[row_ptr[i]..row_ptr[i + 1]].iter().sum();
        }

        // Transpose scatter (counting sort on target), recording the
        // CSR-slot -> transpose-slot permutation for later value
        // refills.
        let nnz = col.len();
        assert!(nnz <= u32::MAX as usize, "nonzero count exceeds u32 range");
        let mut tcol = vec![0u32; nnz];
        let mut tval = vec![0.0f64; nnz];
        let mut tperm = vec![0u32; nnz];
        let mut cursor = trow_ptr.clone();
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                let j = col[k] as usize;
                let slot = cursor[j];
                tcol[slot] = i as u32;
                tval[slot] = val[k];
                tperm[k] = slot as u32;
                cursor[j] += 1;
            }
        }

        SparseGenerator {
            n,
            row_ptr,
            col,
            val,
            trow_ptr,
            tcol,
            tval,
            exit,
            tperm,
        }
    }

    /// Assembles a sparse generator by enumerating all transitions of a
    /// matrix-free model.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] if the model has no states, or
    /// [`CtmcError::InvalidGenerator`] if the model reports an invalid
    /// transition.
    pub fn from_transitions<G: Transitions + ?Sized>(gen: &G) -> Result<Self, CtmcError> {
        let n = gen.num_states();
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let entries = enumerate_rows(gen, 0..n)?;
        // Rows arrive in order and validated; only the in-row column
        // sort remains (pdqsort is adaptive on the nearly-sorted input).
        let mut sorted = entries;
        sorted.sort_unstable_by_key(|e| (e.0, e.1));
        Ok(Self::assemble_sorted(n, sorted))
    }

    /// Like [`from_transitions`](Self::from_transitions), enumerating
    /// row ranges across up to `threads` workers (pass
    /// [`gprs_exec::num_threads`] for the default). The result is
    /// identical to the sequential assembly regardless of thread count:
    /// workers own contiguous row ranges whose triplet blocks concatenate
    /// back in row order.
    ///
    /// # Errors
    ///
    /// As [`from_transitions`](Self::from_transitions).
    pub fn from_transitions_par<G: Transitions + Sync + ?Sized>(
        gen: &G,
        threads: usize,
    ) -> Result<Self, CtmcError> {
        let n = gen.num_states();
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let blocks = par_map_ranges(n, threads, |range| enumerate_rows(gen, range));
        let mut entries = Vec::new();
        for block in blocks {
            entries.append(&mut block?);
        }
        // Rows are globally ordered already (workers own contiguous row
        // ranges, concatenated in order); the adaptive sort finishes the
        // in-row column ordering cheaply.
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        Ok(Self::assemble_sorted(n, entries))
    }

    /// Overwrites the stored rates in place by re-enumerating a model
    /// with the **same sparsity pattern** — the numeric half of the
    /// symbolic/numeric split behind parameter sweeps.
    ///
    /// The symbolic work of assembly (triplet sort, deduplication,
    /// CSR + transpose layout) depends only on *which* transitions
    /// exist, which for a fixed model shape never changes across a
    /// sweep; only the rates do. `refill_values` re-runs the transition
    /// enumeration and scatters the new rates into the existing
    /// pattern: no sorting, no allocation, and the transpose is rebuilt
    /// through the precomputed slot permutation. Values, transpose
    /// values and exit rates come out bit-identical to a from-scratch
    /// assembly of the same model whenever each `(source, target)` pair
    /// is enumerated at most twice (f64 addition is commutative, so a
    /// duplicate pair sums identically in either order; three or more
    /// duplicates may differ in the last ulp because the association
    /// order changes). Rates of exactly zero stay as explicit zeros in
    /// the pattern.
    ///
    /// In debug builds a transition outside the stored pattern fails a
    /// `debug_assert` immediately; release builds report it as
    /// [`CtmcError::InvalidGenerator`]. A failed refill **rolls back**:
    /// the transpose (only written on success) still holds the previous
    /// values, so they are scattered back and the matrix stays
    /// consistent with its pre-call state (exit rates recomputed as row
    /// sums, which may differ in the last ulp for rows with duplicate
    /// pattern entries).
    ///
    /// # Errors
    ///
    /// * [`CtmcError::DimensionMismatch`] — `gen` has a different state
    ///   count.
    /// * [`CtmcError::InvalidGenerator`] — a transition is invalid
    ///   (negative, non-finite, diagonal, out of bounds) or absent from
    ///   the stored pattern.
    pub fn refill_values<G: Transitions + ?Sized>(&mut self, gen: &G) -> Result<(), CtmcError> {
        if gen.num_states() != self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                actual: gen.num_states(),
            });
        }
        let n = self.n;
        let mut failed: Option<String> = None;
        for i in 0..n {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let (cols, vals) = (&self.col[lo..hi], &mut self.val[lo..hi]);
            vals.fill(0.0);
            let mut bad: Option<String> = None;
            gen.for_each_outgoing(i, &mut |j, rate| {
                if bad.is_some() {
                    return;
                }
                if j >= n || j == i || !rate.is_finite() || rate < 0.0 {
                    bad = Some(format!("transition {i} -> {j} with rate {rate}"));
                    return;
                }
                if rate == 0.0 {
                    // Fresh assembly drops exact zeros, so they cannot
                    // have a slot; skipping keeps the semantics aligned.
                    return;
                }
                match cols.binary_search(&(j as u32)) {
                    Ok(slot) => vals[slot] += rate,
                    Err(_) => {
                        debug_assert!(
                            false,
                            "refill pattern mismatch: transition {i} -> {j} absent from template"
                        );
                        bad = Some(format!(
                            "refill pattern mismatch: transition {i} -> {j} absent from template"
                        ));
                    }
                }
            });
            if bad.is_some() {
                failed = bad;
                break;
            }
            // Exit rate = row sum over the merged values in column
            // order — the same association fresh assembly uses.
            self.exit[i] = vals.iter().sum();
        }

        if let Some(reason) = failed {
            // Roll back the partially refilled rows from the transpose,
            // which still holds the pre-call values.
            for (k, &slot) in self.tperm.iter().enumerate() {
                self.val[k] = self.tval[slot as usize];
            }
            for i in 0..n {
                self.exit[i] = self.val[self.row_ptr[i]..self.row_ptr[i + 1]].iter().sum();
            }
            return Err(CtmcError::InvalidGenerator { reason });
        }

        // Transpose values through the precomputed scatter permutation.
        for (k, &slot) in self.tperm.iter().enumerate() {
            self.tval[slot as usize] = self.val[k];
        }
        Ok(())
    }

    /// Whether `other` stores exactly the same sparsity pattern (rows,
    /// columns and state count; values are ignored). Refilling from a
    /// model is valid precisely when the model's fresh assembly would
    /// have this pattern.
    pub fn same_pattern(&self, other: &SparseGenerator) -> bool {
        self.n == other.n && self.row_ptr == other.row_ptr && self.col == other.col
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of stored off-diagonal nonzeros.
    pub fn num_nonzeros(&self) -> usize {
        self.val.len()
    }

    /// The outgoing row of `state` as parallel `(targets, rates)` slices.
    pub fn row(&self, state: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[state];
        let hi = self.row_ptr[state + 1];
        (&self.col[lo..hi], &self.val[lo..hi])
    }

    /// The incoming column of `state` as parallel `(sources, rates)` slices.
    pub fn column(&self, state: usize) -> (&[u32], &[f64]) {
        let lo = self.trow_ptr[state];
        let hi = self.trow_ptr[state + 1];
        (&self.tcol[lo..hi], &self.tval[lo..hi])
    }

    /// Per-state exit rates (negated diagonal of `Q`).
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// The transpose (incoming) CSR as flat `(row_ptr, sources, rates)`
    /// slices: the sources of state `j` are
    /// `sources[row_ptr[j]..row_ptr[j + 1]]`. The cache-blocked sweep
    /// kernels iterate these spans directly instead of paying a
    /// callback per edge; the edge order per state is exactly the
    /// [`IncomingTransitions::for_each_incoming`] visitation order, so
    /// both access paths accumulate bit-identical inflows.
    pub(crate) fn transpose_csr(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.trow_ptr, &self.tcol, &self.tval)
    }

    /// Maximum exit rate over all states (the uniformization constant
    /// before head-room scaling). Returns 0 for a chain with no
    /// transitions.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().cloned().fold(0.0, f64::max)
    }

    /// Checks that every state can reach every other state (generator
    /// irreducibility) via two breadth-first searches (forward from 0 and
    /// backward from 0 over transposed edges).
    pub fn is_irreducible(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let reach_fwd = self.bfs(|s, f| {
            let (cols, _) = self.row(s);
            for &c in cols {
                f(c as usize);
            }
        });
        let reach_bwd = self.bfs(|s, f| {
            let (cols, _) = self.column(s);
            for &c in cols {
                f(c as usize);
            }
        });
        reach_fwd && reach_bwd
    }

    fn bfs(&self, neighbors: impl Fn(usize, &mut dyn FnMut(usize))) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut count = 1usize;
        while let Some(s) = queue.pop_front() {
            neighbors(s, &mut |t| {
                if !seen[t] {
                    seen[t] = true;
                    count += 1;
                    queue.push_back(t);
                }
            });
        }
        count == self.n
    }
}

impl Transitions for SparseGenerator {
    fn num_states(&self) -> usize {
        self.n
    }

    fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.row(state);
        for (&j, &r) in cols.iter().zip(vals) {
            visit(j as usize, r);
        }
    }

    fn exit_rate(&self, state: usize) -> f64 {
        self.exit[state]
    }
}

impl IncomingTransitions for SparseGenerator {
    fn for_each_incoming(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.column(state);
        for (&i, &r) in cols.iter().zip(vals) {
            visit(i as usize, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_cycle() -> SparseGenerator {
        let mut b = TripletBuilder::new(3);
        b.push(0, 1, 2.0);
        b.push(1, 2, 1.0);
        b.push(2, 0, 0.5);
        b.build().unwrap()
    }

    #[test]
    fn builds_csr_and_transpose() {
        let g = three_cycle();
        assert_eq!(g.num_states(), 3);
        assert_eq!(g.num_nonzeros(), 3);
        assert_eq!(g.row(0), (&[1u32][..], &[2.0][..]));
        assert_eq!(g.column(0), (&[2u32][..], &[0.5][..]));
        assert_eq!(g.exit_rates(), &[2.0, 1.0, 0.5]);
        assert_eq!(g.max_exit_rate(), 2.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_nonzeros(), 2);
        assert_eq!(g.row(0).1, &[3.5]);
    }

    #[test]
    fn zero_rates_dropped() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 0.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rejects_diagonal() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 1.0);
        assert!(matches!(b.build(), Err(CtmcError::InvalidGenerator { .. })));
    }

    #[test]
    fn rejects_negative_rate() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, -1.0);
        assert!(matches!(b.build(), Err(CtmcError::InvalidGenerator { .. })));
    }

    #[test]
    fn rejects_empty_chain() {
        let b = TripletBuilder::new(0);
        assert_eq!(b.build().unwrap_err(), CtmcError::EmptyChain);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds_in_debug() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 5, 1.0);
    }

    #[test]
    fn build_rejects_out_of_bounds() {
        // Bypass the debug-only push check to exercise the build-time
        // validation release builds rely on.
        let mut b = TripletBuilder::new(2);
        b.entries.push((0, 5, 1.0));
        assert!(matches!(b.build(), Err(CtmcError::InvalidGenerator { .. })));
    }

    #[test]
    fn parallel_sort_path_matches_sequential() {
        // Enough triplets to cross the parallel-sort threshold.
        let n = 600;
        let mut seq = TripletBuilder::new(n);
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..(1 << 17) {
            let i = (next() % n as u64) as usize;
            let mut j = (next() % n as u64) as usize;
            if j == i {
                j = (j + 1) % n;
            }
            let r = (next() >> 40) as f64 / 100.0 + 0.01;
            seq.push(i, j, r);
        }
        let entries = seq.entries.clone();
        let g_par = seq.build().unwrap();
        // Force the sequential path for comparison.
        let sorted = {
            let mut e = entries;
            e.sort_by_key(|e| (e.0, e.1));
            e
        };
        let g_seq = SparseGenerator::assemble_sorted(n, sorted);
        assert_eq!(g_par.num_nonzeros(), g_seq.num_nonzeros());
        for s in 0..n {
            assert_eq!(g_par.row(s).0, g_seq.row(s).0, "row {s} structure");
            for (a, b) in g_par.row(s).1.iter().zip(g_seq.row(s).1) {
                assert!((a - b).abs() < 1e-12 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn from_transitions_par_is_identical_across_thread_counts() {
        let g = three_cycle();
        let base = SparseGenerator::from_transitions(&g).unwrap();
        for threads in [1usize, 2, 4] {
            let par = SparseGenerator::from_transitions_par(&g, threads).unwrap();
            assert_eq!(par.num_nonzeros(), base.num_nonzeros());
            for s in 0..3 {
                assert_eq!(par.row(s), base.row(s));
                assert_eq!(par.column(s), base.column(s));
            }
        }
    }

    #[test]
    fn irreducibility() {
        assert!(three_cycle().is_irreducible());
        // Two disconnected states.
        let mut b = TripletBuilder::new(4);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(2, 3, 1.0);
        b.push(3, 2, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
        // Absorbing state (reachable but cannot return).
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
    }

    /// A parameterized ring whose pattern is rate-independent.
    struct Ring {
        n: usize,
        scale: f64,
    }

    impl Transitions for Ring {
        fn num_states(&self) -> usize {
            self.n
        }
        fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
            visit((state + 1) % self.n, self.scale * (1.0 + state as f64));
            visit(
                (state + self.n - 1) % self.n,
                self.scale / (1.0 + state as f64),
            );
        }
    }

    #[test]
    fn refill_matches_fresh_assembly_bitwise() {
        let mut g = SparseGenerator::from_transitions(&Ring { n: 9, scale: 1.0 }).unwrap();
        for scale in [0.25, 3.5, 1.0e-3] {
            let model = Ring { n: 9, scale };
            g.refill_values(&model).unwrap();
            let fresh = SparseGenerator::from_transitions(&model).unwrap();
            assert!(g.same_pattern(&fresh));
            for s in 0..9 {
                assert_eq!(g.row(s), fresh.row(s), "row {s}");
                assert_eq!(g.column(s), fresh.column(s), "column {s}");
            }
            assert_eq!(g.exit_rates(), fresh.exit_rates());
        }
    }

    #[test]
    fn refill_sums_duplicate_transitions() {
        struct Doubled;
        impl Transitions for Doubled {
            fn num_states(&self) -> usize {
                2
            }
            fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
                visit(1 - state, 1.5);
                visit(1 - state, 2.5);
            }
        }
        let mut g = SparseGenerator::from_transitions(&Doubled).unwrap();
        assert_eq!(g.num_nonzeros(), 2);
        g.refill_values(&Doubled).unwrap();
        assert_eq!(g.row(0).1, &[4.0]);
        assert_eq!(g.exit_rates(), &[4.0, 4.0]);
    }

    #[test]
    fn refill_exit_rates_match_assembly_with_offset_duplicates() {
        // Duplicates on a column that is *not* the row's first entry,
        // with magnitudes chosen so association order is visible at the
        // ulp level: exit must still match fresh assembly bit for bit
        // (both sum the merged values in column order).
        struct Lopsided;
        impl Transitions for Lopsided {
            fn num_states(&self) -> usize {
                3
            }
            fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
                if state == 0 {
                    visit(1, 1e16);
                    visit(2, 1.0);
                    visit(2, 1.0);
                } else {
                    visit(0, 1.0);
                }
            }
        }
        let fresh = SparseGenerator::from_transitions(&Lopsided).unwrap();
        let mut refilled = fresh.clone();
        refilled.refill_values(&Lopsided).unwrap();
        assert_eq!(refilled.exit_rates(), fresh.exit_rates());
        for s in 0..3 {
            assert_eq!(refilled.row(s), fresh.row(s));
        }
    }

    #[test]
    fn refill_rejects_wrong_state_count() {
        let mut g = SparseGenerator::from_transitions(&Ring { n: 5, scale: 1.0 }).unwrap();
        let err = g.refill_values(&Ring { n: 6, scale: 1.0 }).unwrap_err();
        assert!(matches!(err, CtmcError::DimensionMismatch { .. }));
    }

    #[test]
    fn refill_rejects_invalid_rate() {
        let mut g = SparseGenerator::from_transitions(&Ring { n: 5, scale: 1.0 }).unwrap();
        let err = g.refill_values(&Ring { n: 5, scale: -1.0 }).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }

    #[test]
    fn failed_refill_rolls_back_to_previous_values() {
        // Valid on rows 0..3, invalid (negative) rate on row 3: the
        // refill fails after partially rewriting earlier rows and must
        // restore the previous consistent matrix.
        struct HalfBad {
            scale: f64,
        }
        impl Transitions for HalfBad {
            fn num_states(&self) -> usize {
                5
            }
            fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
                let rate = if state == 3 { -1.0 } else { self.scale };
                visit((state + 1) % 5, rate);
                visit((state + 4) % 5, self.scale);
            }
        }
        let good = Ring { n: 5, scale: 2.0 };
        let mut g = SparseGenerator::from_transitions(&good).unwrap();
        let before = g.clone();
        let err = g.refill_values(&HalfBad { scale: 9.0 }).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
        for s in 0..5 {
            assert_eq!(g.row(s), before.row(s), "row {s} not rolled back");
            assert_eq!(g.column(s), before.column(s), "column {s} not rolled back");
        }
        assert_eq!(g.exit_rates(), before.exit_rates());
        // The rolled-back matrix is still refillable.
        g.refill_values(&Ring { n: 5, scale: 0.5 }).unwrap();
        let fresh = SparseGenerator::from_transitions(&Ring { n: 5, scale: 0.5 }).unwrap();
        assert_eq!(g.row(0), fresh.row(0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pattern mismatch")]
    fn refill_mismatched_pattern_debug_asserts() {
        // The three-cycle's pattern has no 0 -> 2 edge; a model that
        // enumerates one must be caught by the debug validation.
        let mut g = three_cycle();
        struct Widened;
        impl Transitions for Widened {
            fn num_states(&self) -> usize {
                3
            }
            fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
                visit((state + 1) % 3, 1.0);
                visit((state + 2) % 3, 1.0);
            }
        }
        let _ = g.refill_values(&Widened);
    }

    #[test]
    fn from_transitions_round_trips() {
        let g = three_cycle();
        let g2 = SparseGenerator::from_transitions(&g).unwrap();
        assert_eq!(g2.num_nonzeros(), g.num_nonzeros());
        for s in 0..3 {
            assert_eq!(g2.row(s), g.row(s));
        }
    }

    #[test]
    fn transitions_trait_impl_matches_storage() {
        let g = three_cycle();
        let mut seen = Vec::new();
        g.for_each_incoming(0, &mut |i, r| seen.push((i, r)));
        assert_eq!(seen, vec![(2, 0.5)]);
    }
}
