//! Sparse (CSR) generator matrices and the triplet builder that assembles
//! them.
//!
//! Assembly is a single validation-and-build pass: triplets are
//! validated while the sort runs (in parallel chunks for large inputs —
//! see [`crate::parallel`]), then merged straight into the CSR arrays
//! and their transpose. Large matrix-free models can also be assembled
//! with [`SparseGenerator::from_transitions_par`], which enumerates
//! row ranges across threads.

use crate::error::CtmcError;
use crate::transitions::{IncomingTransitions, Transitions};
use gprs_exec::{num_threads, par_map_chunks_mut, par_map_ranges, par_map_vec};

/// Triplet counts below this stay on the single-threaded sort path.
const PAR_SORT_MIN: usize = 1 << 16;

/// Accumulates `(source, target, rate)` triplets and assembles a
/// [`SparseGenerator`].
///
/// Duplicate `(source, target)` entries are summed. Diagonal entries are
/// rejected at [`build`](TripletBuilder::build) time: the diagonal of a
/// generator is implied by its off-diagonal rows.
///
/// # Example
///
/// ```
/// use gprs_ctmc::TripletBuilder;
///
/// let mut b = TripletBuilder::new(3);
/// b.push(0, 1, 2.0);
/// b.push(1, 2, 1.0);
/// b.push(2, 0, 0.5);
/// let gen = b.build()?;
/// assert_eq!(gen.num_nonzeros(), 3);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a chain with `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (state indices are stored as
    /// `u32`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "state count {n} exceeds u32 range");
        TripletBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `cap` triplets.
    ///
    /// # Panics
    ///
    /// As [`new`](TripletBuilder::new).
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        assert!(n <= u32::MAX as usize, "state count {n} exceeds u32 range");
        TripletBuilder {
            n,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Records the transition `source -> target` at `rate`.
    ///
    /// Rates of exactly zero are silently dropped (convenient when a rate
    /// formula can evaluate to zero).
    ///
    /// Bounds are checked here only in debug builds — `push` sits on the
    /// hot path of model enumeration. Release builds validate every
    /// triplet once, at [`build`](TripletBuilder::build) time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `source` or `target` is out of bounds.
    #[inline]
    pub fn push(&mut self, source: usize, target: usize, rate: f64) {
        debug_assert!(
            source < self.n,
            "source {source} out of bounds ({})",
            self.n
        );
        debug_assert!(
            target < self.n,
            "target {target} out of bounds ({})",
            self.n
        );
        if rate == 0.0 {
            return;
        }
        // Saturating narrowing: an index beyond u32 becomes u32::MAX,
        // which is always >= n (builders cap n at u32::MAX), so the
        // build-time validation still rejects it — a plain `as` cast
        // could alias a wild index back into bounds.
        let source = source.min(u32::MAX as usize) as u32;
        let target = target.min(u32::MAX as usize) as u32;
        self.entries.push((source, target, rate));
    }

    /// Number of recorded (nonzero) triplets so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assembles the CSR generator, summing duplicates.
    ///
    /// Validation is fused into assembly: each triplet is checked during
    /// the (parallel, for large inputs) sort pass, rather than in a
    /// separate scan before a second assembly scan.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] for `n == 0`, and
    /// [`CtmcError::InvalidGenerator`] if any rate is negative,
    /// non-finite, out of bounds, or sits on the diagonal.
    pub fn build(self) -> Result<SparseGenerator, CtmcError> {
        SparseGenerator::try_from_triplets(self.n, self.entries)
    }
}

/// Checks one triplet slice; returns the first defect found.
fn validate_triplets(n: usize, entries: &[(u32, u32, f64)]) -> Result<(), CtmcError> {
    for &(i, j, rate) in entries {
        if i as usize >= n || j as usize >= n {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("transition {i} -> {j} out of bounds (n = {n})"),
            });
        }
        if i == j {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("diagonal entry at state {i}"),
            });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("rate {rate} on transition {i} -> {j}"),
            });
        }
    }
    Ok(())
}

/// Sorts triplets by `(row, col)`, validating each entry exactly once
/// along the way. Large inputs sort in parallel chunks which are then
/// merged pairwise across threads.
fn sort_and_validate(
    n: usize,
    mut entries: Vec<(u32, u32, f64)>,
    threads: usize,
) -> Result<Vec<(u32, u32, f64)>, CtmcError> {
    if threads <= 1 || entries.len() < PAR_SORT_MIN {
        validate_triplets(n, &entries)?;
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        return Ok(entries);
    }

    // Chunk pass: validate + sort each chunk concurrently.
    let chunk = entries.len().div_ceil(threads);
    let results = par_map_chunks_mut(&mut entries, threads, |_, ch| {
        let r = validate_triplets(n, ch);
        if r.is_ok() {
            ch.sort_unstable_by_key(|e| (e.0, e.1));
        }
        r
    });
    results.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Pairwise merge rounds until a single sorted run remains.
    let mut runs: Vec<Vec<(u32, u32, f64)>> = entries.chunks(chunk).map(<[_]>::to_vec).collect();
    drop(entries);
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = par_map_vec(pairs, threads, |(a, b)| match b {
            None => a,
            Some(b) => merge_sorted(a, b),
        });
    }
    Ok(runs.pop().unwrap_or_default())
}

/// Enumerates (and validates) the outgoing triplets of a row range of a
/// matrix-free model.
fn enumerate_rows<G: Transitions + ?Sized>(
    gen: &G,
    rows: std::ops::Range<usize>,
) -> Result<Vec<(u32, u32, f64)>, CtmcError> {
    let n = gen.num_states();
    let mut out = Vec::new();
    for i in rows {
        let mut bad: Option<String> = None;
        gen.for_each_outgoing(i, &mut |j, rate| {
            if j >= n || j == i || !rate.is_finite() || rate < 0.0 {
                bad = Some(format!("transition {i} -> {j} with rate {rate}"));
            } else if rate > 0.0 {
                out.push((i as u32, j as u32, rate));
            }
        });
        if let Some(reason) = bad {
            return Err(CtmcError::InvalidGenerator { reason });
        }
    }
    Ok(out)
}

fn merge_sorted(a: Vec<(u32, u32, f64)>, b: Vec<(u32, u32, f64)>) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        // `<=` keeps the earlier run's duplicates first (stable merge).
        if (a[ia].0, a[ia].1) <= (b[ib].0, b[ib].1) {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

/// A CTMC generator stored in compressed sparse row form, together with
/// its transpose (for incoming-transition access) and per-state exit
/// rates.
///
/// Construct via [`TripletBuilder`] or [`SparseGenerator::from_transitions`].
#[derive(Debug, Clone)]
pub struct SparseGenerator {
    n: usize,
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    val: Vec<f64>,
    trow_ptr: Vec<usize>,
    tcol: Vec<u32>,
    tval: Vec<f64>,
    exit: Vec<f64>,
}

impl SparseGenerator {
    /// Validates, sorts (in parallel for large inputs), deduplicates and
    /// assembles triplets into CSR plus transpose — one logical pass per
    /// triplet instead of the historical validate-scan followed by an
    /// assembly re-scan.
    fn try_from_triplets(n: usize, entries: Vec<(u32, u32, f64)>) -> Result<Self, CtmcError> {
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let sorted = sort_and_validate(n, entries, num_threads())?;
        Ok(Self::assemble_sorted(n, sorted))
    }

    /// Assembles already-sorted, already-validated triplets.
    fn assemble_sorted(n: usize, sorted: Vec<(u32, u32, f64)>) -> Self {
        // Single merge pass: deduplicate while filling the CSR arrays,
        // the exit rates, and the transpose's column counts.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut val: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut exit = vec![0.0f64; n];
        let mut trow_ptr = vec![0usize; n + 1];
        let mut last: Option<(u32, u32)> = None;
        for (i, j, r) in sorted {
            exit[i as usize] += r;
            if last == Some((i, j)) {
                // Duplicate (row, col): merge into the previous entry.
                *val.last_mut().expect("duplicate follows an entry") += r;
                continue;
            }
            last = Some((i, j));
            row_ptr[i as usize + 1] += 1;
            trow_ptr[j as usize + 1] += 1;
            col.push(j);
            val.push(r);
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
            trow_ptr[i + 1] += trow_ptr[i];
        }

        // Transpose scatter (counting sort on target).
        let nnz = col.len();
        let mut tcol = vec![0u32; nnz];
        let mut tval = vec![0.0f64; nnz];
        let mut cursor = trow_ptr.clone();
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                let j = col[k] as usize;
                let slot = cursor[j];
                tcol[slot] = i as u32;
                tval[slot] = val[k];
                cursor[j] += 1;
            }
        }

        SparseGenerator {
            n,
            row_ptr,
            col,
            val,
            trow_ptr,
            tcol,
            tval,
            exit,
        }
    }

    /// Assembles a sparse generator by enumerating all transitions of a
    /// matrix-free model.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] if the model has no states, or
    /// [`CtmcError::InvalidGenerator`] if the model reports an invalid
    /// transition.
    pub fn from_transitions<G: Transitions + ?Sized>(gen: &G) -> Result<Self, CtmcError> {
        let n = gen.num_states();
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let entries = enumerate_rows(gen, 0..n)?;
        // Rows arrive in order and validated; only the in-row column
        // sort remains (pdqsort is adaptive on the nearly-sorted input).
        let mut sorted = entries;
        sorted.sort_unstable_by_key(|e| (e.0, e.1));
        Ok(Self::assemble_sorted(n, sorted))
    }

    /// Like [`from_transitions`](Self::from_transitions), enumerating
    /// row ranges across up to `threads` workers (pass
    /// [`gprs_exec::num_threads`] for the default). The result is
    /// identical to the sequential assembly regardless of thread count:
    /// workers own contiguous row ranges whose triplet blocks concatenate
    /// back in row order.
    ///
    /// # Errors
    ///
    /// As [`from_transitions`](Self::from_transitions).
    pub fn from_transitions_par<G: Transitions + Sync + ?Sized>(
        gen: &G,
        threads: usize,
    ) -> Result<Self, CtmcError> {
        let n = gen.num_states();
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let blocks = par_map_ranges(n, threads, |range| enumerate_rows(gen, range));
        let mut entries = Vec::new();
        for block in blocks {
            entries.append(&mut block?);
        }
        // Rows are globally ordered already (workers own contiguous row
        // ranges, concatenated in order); the adaptive sort finishes the
        // in-row column ordering cheaply.
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        Ok(Self::assemble_sorted(n, entries))
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of stored off-diagonal nonzeros.
    pub fn num_nonzeros(&self) -> usize {
        self.val.len()
    }

    /// The outgoing row of `state` as parallel `(targets, rates)` slices.
    pub fn row(&self, state: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[state];
        let hi = self.row_ptr[state + 1];
        (&self.col[lo..hi], &self.val[lo..hi])
    }

    /// The incoming column of `state` as parallel `(sources, rates)` slices.
    pub fn column(&self, state: usize) -> (&[u32], &[f64]) {
        let lo = self.trow_ptr[state];
        let hi = self.trow_ptr[state + 1];
        (&self.tcol[lo..hi], &self.tval[lo..hi])
    }

    /// Per-state exit rates (negated diagonal of `Q`).
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// Maximum exit rate over all states (the uniformization constant
    /// before head-room scaling). Returns 0 for a chain with no
    /// transitions.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().cloned().fold(0.0, f64::max)
    }

    /// Checks that every state can reach every other state (generator
    /// irreducibility) via two breadth-first searches (forward from 0 and
    /// backward from 0 over transposed edges).
    pub fn is_irreducible(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let reach_fwd = self.bfs(|s, f| {
            let (cols, _) = self.row(s);
            for &c in cols {
                f(c as usize);
            }
        });
        let reach_bwd = self.bfs(|s, f| {
            let (cols, _) = self.column(s);
            for &c in cols {
                f(c as usize);
            }
        });
        reach_fwd && reach_bwd
    }

    fn bfs(&self, neighbors: impl Fn(usize, &mut dyn FnMut(usize))) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut count = 1usize;
        while let Some(s) = queue.pop_front() {
            neighbors(s, &mut |t| {
                if !seen[t] {
                    seen[t] = true;
                    count += 1;
                    queue.push_back(t);
                }
            });
        }
        count == self.n
    }
}

impl Transitions for SparseGenerator {
    fn num_states(&self) -> usize {
        self.n
    }

    fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.row(state);
        for (&j, &r) in cols.iter().zip(vals) {
            visit(j as usize, r);
        }
    }

    fn exit_rate(&self, state: usize) -> f64 {
        self.exit[state]
    }
}

impl IncomingTransitions for SparseGenerator {
    fn for_each_incoming(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.column(state);
        for (&i, &r) in cols.iter().zip(vals) {
            visit(i as usize, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_cycle() -> SparseGenerator {
        let mut b = TripletBuilder::new(3);
        b.push(0, 1, 2.0);
        b.push(1, 2, 1.0);
        b.push(2, 0, 0.5);
        b.build().unwrap()
    }

    #[test]
    fn builds_csr_and_transpose() {
        let g = three_cycle();
        assert_eq!(g.num_states(), 3);
        assert_eq!(g.num_nonzeros(), 3);
        assert_eq!(g.row(0), (&[1u32][..], &[2.0][..]));
        assert_eq!(g.column(0), (&[2u32][..], &[0.5][..]));
        assert_eq!(g.exit_rates(), &[2.0, 1.0, 0.5]);
        assert_eq!(g.max_exit_rate(), 2.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_nonzeros(), 2);
        assert_eq!(g.row(0).1, &[3.5]);
    }

    #[test]
    fn zero_rates_dropped() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 0.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rejects_diagonal() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 1.0);
        assert!(matches!(b.build(), Err(CtmcError::InvalidGenerator { .. })));
    }

    #[test]
    fn rejects_negative_rate() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, -1.0);
        assert!(matches!(b.build(), Err(CtmcError::InvalidGenerator { .. })));
    }

    #[test]
    fn rejects_empty_chain() {
        let b = TripletBuilder::new(0);
        assert_eq!(b.build().unwrap_err(), CtmcError::EmptyChain);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds_in_debug() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 5, 1.0);
    }

    #[test]
    fn build_rejects_out_of_bounds() {
        // Bypass the debug-only push check to exercise the build-time
        // validation release builds rely on.
        let mut b = TripletBuilder::new(2);
        b.entries.push((0, 5, 1.0));
        assert!(matches!(b.build(), Err(CtmcError::InvalidGenerator { .. })));
    }

    #[test]
    fn parallel_sort_path_matches_sequential() {
        // Enough triplets to cross the parallel-sort threshold.
        let n = 600;
        let mut seq = TripletBuilder::new(n);
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..(1 << 17) {
            let i = (next() % n as u64) as usize;
            let mut j = (next() % n as u64) as usize;
            if j == i {
                j = (j + 1) % n;
            }
            let r = (next() >> 40) as f64 / 100.0 + 0.01;
            seq.push(i, j, r);
        }
        let entries = seq.entries.clone();
        let g_par = seq.build().unwrap();
        // Force the sequential path for comparison.
        let sorted = {
            let mut e = entries;
            e.sort_by_key(|e| (e.0, e.1));
            e
        };
        let g_seq = SparseGenerator::assemble_sorted(n, sorted);
        assert_eq!(g_par.num_nonzeros(), g_seq.num_nonzeros());
        for s in 0..n {
            assert_eq!(g_par.row(s).0, g_seq.row(s).0, "row {s} structure");
            for (a, b) in g_par.row(s).1.iter().zip(g_seq.row(s).1) {
                assert!((a - b).abs() < 1e-12 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn from_transitions_par_is_identical_across_thread_counts() {
        let g = three_cycle();
        let base = SparseGenerator::from_transitions(&g).unwrap();
        for threads in [1usize, 2, 4] {
            let par = SparseGenerator::from_transitions_par(&g, threads).unwrap();
            assert_eq!(par.num_nonzeros(), base.num_nonzeros());
            for s in 0..3 {
                assert_eq!(par.row(s), base.row(s));
                assert_eq!(par.column(s), base.column(s));
            }
        }
    }

    #[test]
    fn irreducibility() {
        assert!(three_cycle().is_irreducible());
        // Two disconnected states.
        let mut b = TripletBuilder::new(4);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(2, 3, 1.0);
        b.push(3, 2, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
        // Absorbing state (reachable but cannot return).
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
    }

    #[test]
    fn from_transitions_round_trips() {
        let g = three_cycle();
        let g2 = SparseGenerator::from_transitions(&g).unwrap();
        assert_eq!(g2.num_nonzeros(), g.num_nonzeros());
        for s in 0..3 {
            assert_eq!(g2.row(s), g.row(s));
        }
    }

    #[test]
    fn transitions_trait_impl_matches_storage() {
        let g = three_cycle();
        let mut seen = Vec::new();
        g.for_each_incoming(0, &mut |i, r| seen.push((i, r)));
        assert_eq!(seen, vec![(2, 0.5)]);
    }
}
