//! Sparse (CSR) generator matrices and the triplet builder that assembles
//! them.

use crate::error::CtmcError;
use crate::transitions::{IncomingTransitions, Transitions};

/// Accumulates `(source, target, rate)` triplets and assembles a
/// [`SparseGenerator`].
///
/// Duplicate `(source, target)` entries are summed. Diagonal entries are
/// rejected at [`build`](TripletBuilder::build) time: the diagonal of a
/// generator is implied by its off-diagonal rows.
///
/// # Example
///
/// ```
/// use gprs_ctmc::TripletBuilder;
///
/// let mut b = TripletBuilder::new(3);
/// b.push(0, 1, 2.0);
/// b.push(1, 2, 1.0);
/// b.push(2, 0, 0.5);
/// let gen = b.build()?;
/// assert_eq!(gen.num_nonzeros(), 3);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a chain with `n` states.
    pub fn new(n: usize) -> Self {
        TripletBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `cap` triplets.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        TripletBuilder {
            n,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Records the transition `source -> target` at `rate`.
    ///
    /// Rates of exactly zero are silently dropped (convenient when a rate
    /// formula can evaluate to zero).
    ///
    /// # Panics
    ///
    /// Panics if `source` or `target` is out of bounds.
    pub fn push(&mut self, source: usize, target: usize, rate: f64) {
        assert!(source < self.n, "source {source} out of bounds ({})", self.n);
        assert!(target < self.n, "target {target} out of bounds ({})", self.n);
        if rate == 0.0 {
            return;
        }
        self.entries.push((source as u32, target as u32, rate));
    }

    /// Number of recorded (nonzero) triplets so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assembles the CSR generator, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] for `n == 0`, and
    /// [`CtmcError::InvalidGenerator`] if any rate is negative, non-finite,
    /// or sits on the diagonal.
    pub fn build(self) -> Result<SparseGenerator, CtmcError> {
        if self.n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        for &(i, j, rate) in &self.entries {
            if i == j {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!("diagonal entry at state {i}"),
                });
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!("rate {rate} on transition {i} -> {j}"),
                });
            }
        }
        Ok(SparseGenerator::from_triplets(self.n, self.entries))
    }
}

/// A CTMC generator stored in compressed sparse row form, together with
/// its transpose (for incoming-transition access) and per-state exit
/// rates.
///
/// Construct via [`TripletBuilder`] or [`SparseGenerator::from_transitions`].
#[derive(Debug, Clone)]
pub struct SparseGenerator {
    n: usize,
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    val: Vec<f64>,
    trow_ptr: Vec<usize>,
    tcol: Vec<u32>,
    tval: Vec<f64>,
    exit: Vec<f64>,
}

impl SparseGenerator {
    fn from_triplets(n: usize, mut entries: Vec<(u32, u32, f64)>) -> Self {
        // Sort by (row, col) and merge duplicates.
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len());
        for (i, j, r) in entries {
            if let Some(last) = merged.last_mut() {
                if last.0 == i && last.1 == j {
                    last.2 += r;
                    continue;
                }
            }
            merged.push((i, j, r));
        }

        let nnz = merged.len();
        let mut row_ptr = vec![0usize; n + 1];
        let mut col = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        let mut exit = vec![0.0f64; n];
        for &(i, j, r) in &merged {
            row_ptr[i as usize + 1] += 1;
            col.push(j);
            val.push(r);
            exit[i as usize] += r;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }

        // Transpose (incoming lists), via counting sort on target.
        let mut trow_ptr = vec![0usize; n + 1];
        for &(_, j, _) in &merged {
            trow_ptr[j as usize + 1] += 1;
        }
        for j in 0..n {
            trow_ptr[j + 1] += trow_ptr[j];
        }
        let mut tcol = vec![0u32; nnz];
        let mut tval = vec![0.0f64; nnz];
        let mut cursor = trow_ptr.clone();
        for &(i, j, r) in &merged {
            let slot = cursor[j as usize];
            tcol[slot] = i;
            tval[slot] = r;
            cursor[j as usize] += 1;
        }

        SparseGenerator {
            n,
            row_ptr,
            col,
            val,
            trow_ptr,
            tcol,
            tval,
            exit,
        }
    }

    /// Assembles a sparse generator by enumerating all transitions of a
    /// matrix-free model.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] if the model has no states, or
    /// [`CtmcError::InvalidGenerator`] if the model reports an invalid
    /// transition.
    pub fn from_transitions<G: Transitions + ?Sized>(gen: &G) -> Result<Self, CtmcError> {
        let n = gen.num_states();
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            let mut bad: Option<String> = None;
            gen.for_each_outgoing(i, &mut |j, rate| {
                if j >= n || j == i || !rate.is_finite() || rate < 0.0 {
                    bad = Some(format!("transition {i} -> {j} with rate {rate}"));
                } else if rate > 0.0 {
                    b.entries.push((i as u32, j as u32, rate));
                }
            });
            if let Some(reason) = bad {
                return Err(CtmcError::InvalidGenerator { reason });
            }
        }
        b.build()
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of stored off-diagonal nonzeros.
    pub fn num_nonzeros(&self) -> usize {
        self.val.len()
    }

    /// The outgoing row of `state` as parallel `(targets, rates)` slices.
    pub fn row(&self, state: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[state];
        let hi = self.row_ptr[state + 1];
        (&self.col[lo..hi], &self.val[lo..hi])
    }

    /// The incoming column of `state` as parallel `(sources, rates)` slices.
    pub fn column(&self, state: usize) -> (&[u32], &[f64]) {
        let lo = self.trow_ptr[state];
        let hi = self.trow_ptr[state + 1];
        (&self.tcol[lo..hi], &self.tval[lo..hi])
    }

    /// Per-state exit rates (negated diagonal of `Q`).
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// Maximum exit rate over all states (the uniformization constant
    /// before head-room scaling). Returns 0 for a chain with no
    /// transitions.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().cloned().fold(0.0, f64::max)
    }

    /// Checks that every state can reach every other state (generator
    /// irreducibility) via two breadth-first searches (forward from 0 and
    /// backward from 0 over transposed edges).
    pub fn is_irreducible(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let reach_fwd = self.bfs(|s, f| {
            let (cols, _) = self.row(s);
            for &c in cols {
                f(c as usize);
            }
        });
        let reach_bwd = self.bfs(|s, f| {
            let (cols, _) = self.column(s);
            for &c in cols {
                f(c as usize);
            }
        });
        reach_fwd && reach_bwd
    }

    fn bfs(&self, neighbors: impl Fn(usize, &mut dyn FnMut(usize))) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut count = 1usize;
        while let Some(s) = queue.pop_front() {
            neighbors(s, &mut |t| {
                if !seen[t] {
                    seen[t] = true;
                    count += 1;
                    queue.push_back(t);
                }
            });
        }
        count == self.n
    }
}

impl Transitions for SparseGenerator {
    fn num_states(&self) -> usize {
        self.n
    }

    fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.row(state);
        for (&j, &r) in cols.iter().zip(vals) {
            visit(j as usize, r);
        }
    }

    fn exit_rate(&self, state: usize) -> f64 {
        self.exit[state]
    }
}

impl IncomingTransitions for SparseGenerator {
    fn for_each_incoming(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.column(state);
        for (&i, &r) in cols.iter().zip(vals) {
            visit(i as usize, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_cycle() -> SparseGenerator {
        let mut b = TripletBuilder::new(3);
        b.push(0, 1, 2.0);
        b.push(1, 2, 1.0);
        b.push(2, 0, 0.5);
        b.build().unwrap()
    }

    #[test]
    fn builds_csr_and_transpose() {
        let g = three_cycle();
        assert_eq!(g.num_states(), 3);
        assert_eq!(g.num_nonzeros(), 3);
        assert_eq!(g.row(0), (&[1u32][..], &[2.0][..]));
        assert_eq!(g.column(0), (&[2u32][..], &[0.5][..]));
        assert_eq!(g.exit_rates(), &[2.0, 1.0, 0.5]);
        assert_eq!(g.max_exit_rate(), 2.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_nonzeros(), 2);
        assert_eq!(g.row(0).1, &[3.5]);
    }

    #[test]
    fn zero_rates_dropped() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 0.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rejects_diagonal() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 1.0);
        assert!(matches!(
            b.build(),
            Err(CtmcError::InvalidGenerator { .. })
        ));
    }

    #[test]
    fn rejects_negative_rate() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, -1.0);
        assert!(matches!(
            b.build(),
            Err(CtmcError::InvalidGenerator { .. })
        ));
    }

    #[test]
    fn rejects_empty_chain() {
        let b = TripletBuilder::new(0);
        assert_eq!(b.build().unwrap_err(), CtmcError::EmptyChain);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 5, 1.0);
    }

    #[test]
    fn irreducibility() {
        assert!(three_cycle().is_irreducible());
        // Two disconnected states.
        let mut b = TripletBuilder::new(4);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(2, 3, 1.0);
        b.push(3, 2, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
        // Absorbing state (reachable but cannot return).
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
    }

    #[test]
    fn from_transitions_round_trips() {
        let g = three_cycle();
        let g2 = SparseGenerator::from_transitions(&g).unwrap();
        assert_eq!(g2.num_nonzeros(), g.num_nonzeros());
        for s in 0..3 {
            assert_eq!(g2.row(s), g.row(s));
        }
    }

    #[test]
    fn transitions_trait_impl_matches_storage() {
        let g = three_cycle();
        let mut seen = Vec::new();
        g.for_each_incoming(0, &mut |i, r| seen.push((i, r)));
        assert_eq!(seen, vec![(2, 0.5)]);
    }
}
