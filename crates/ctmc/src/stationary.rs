//! Stationary distribution wrapper and reward-based expectations.

use std::ops::Index;

/// A probability vector over the states of a chain.
///
/// Guaranteed non-negative; construction normalizes to sum 1 when the
/// input total is positive.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryDistribution {
    pi: Vec<f64>,
}

impl StationaryDistribution {
    /// Wraps and normalizes a non-negative weight vector.
    ///
    /// # Panics
    ///
    /// Panics if any entry is negative or non-finite, or if the vector is
    /// empty or sums to zero.
    pub fn new(mut pi: Vec<f64>) -> Self {
        assert!(!pi.is_empty(), "distribution must have at least one state");
        let mut total = 0.0f64;
        for &p in &pi {
            assert!(
                p.is_finite() && p >= 0.0,
                "probabilities must be finite and >= 0"
            );
            total += p;
        }
        assert!(total > 0.0, "distribution must have positive total mass");
        for p in &mut pi {
            *p /= total;
        }
        StationaryDistribution { pi }
    }

    /// Wraps a vector that is already normalized (the workspace-based
    /// solvers normalize in place with exactly the arithmetic of
    /// [`new`](Self::new), so wrapping must not divide a second time —
    /// that would perturb the last ulp against the seed behavior).
    pub(crate) fn from_normalized(pi: Vec<f64>) -> Self {
        debug_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        StationaryDistribution { pi }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.pi.len()
    }

    /// Probability of `state`.
    pub fn prob(&self, state: usize) -> f64 {
        self.pi[state]
    }

    /// Expected value of a per-state reward function:
    /// `Σ_s π(s)·reward(s)`.
    ///
    /// # Example
    ///
    /// ```
    /// use gprs_ctmc::StationaryDistribution;
    ///
    /// let pi = StationaryDistribution::new(vec![0.25, 0.75]);
    /// // Expected state index:
    /// assert_eq!(pi.expectation(|s| s as f64), 0.75);
    /// ```
    pub fn expectation(&self, reward: impl Fn(usize) -> f64) -> f64 {
        self.pi
            .iter()
            .enumerate()
            .map(|(s, &p)| p * reward(s))
            .sum()
    }

    /// Sums probability over all states for which `pred` holds.
    pub fn probability_of(&self, pred: impl Fn(usize) -> bool) -> f64 {
        self.pi
            .iter()
            .enumerate()
            .filter(|&(s, _)| pred(s))
            .map(|(_, &p)| p)
            .sum()
    }

    /// Aggregates the distribution into `num_groups` buckets using
    /// `group(state) -> bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `group` returns an index `>= num_groups`.
    pub fn marginal(&self, num_groups: usize, group: impl Fn(usize) -> usize) -> Vec<f64> {
        let mut out = vec![0.0; num_groups];
        for (s, &p) in self.pi.iter().enumerate() {
            let g = group(s);
            assert!(g < num_groups, "group index {g} out of range {num_groups}");
            out[g] += p;
        }
        out
    }

    /// Borrows the underlying probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.pi
    }

    /// Consumes the wrapper and returns the raw probability vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.pi
    }
}

impl Index<usize> for StationaryDistribution {
    type Output = f64;
    fn index(&self, idx: usize) -> &f64 {
        &self.pi[idx]
    }
}

impl std::ops::Deref for StationaryDistribution {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.pi
    }
}

impl AsRef<[f64]> for StationaryDistribution {
    fn as_ref(&self) -> &[f64] {
        &self.pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_on_construction() {
        let d = StationaryDistribution::new(vec![1.0, 3.0]);
        assert_eq!(d.prob(0), 0.25);
        assert_eq!(d.prob(1), 0.75);
        assert_eq!(d.num_states(), 2);
    }

    #[test]
    fn expectation_and_predicate() {
        let d = StationaryDistribution::new(vec![0.2, 0.3, 0.5]);
        assert!((d.expectation(|s| s as f64) - 1.3).abs() < 1e-15);
        assert!((d.probability_of(|s| s >= 1) - 0.8).abs() < 1e-15);
    }

    #[test]
    fn marginal_groups() {
        let d = StationaryDistribution::new(vec![0.1, 0.2, 0.3, 0.4]);
        let m = d.marginal(2, |s| s % 2);
        assert!((m[0] - 0.4).abs() < 1e-15);
        assert!((m[1] - 0.6).abs() < 1e-15);
    }

    #[test]
    fn iter_and_slices() {
        let d = StationaryDistribution::new(vec![0.5, 0.5]);
        // Deref to slice provides iteration.
        assert_eq!(d.iter().count(), 2);
        assert_eq!(d.as_slice().len(), 2);
        assert_eq!(d[0], 0.5);
        assert_eq!(d.into_inner(), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn zero_mass_panics() {
        let _ = StationaryDistribution::new(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_panics() {
        let _ = StationaryDistribution::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_panics() {
        let _ = StationaryDistribution::new(vec![0.5, -0.1]);
    }
}
