//! Gauss–Seidel / SOR steady-state solver over incoming transitions.
//!
//! This is the workhorse solver of the reproduction: it works matrix-free
//! through [`IncomingTransitions`], supports warm starts (essential for
//! the paper's arrival-rate sweeps), and uses the relative L1 balance
//! residual as its convergence criterion.

use crate::error::CtmcError;
use crate::stationary::StationaryDistribution;
use crate::transitions::IncomingTransitions;
use std::time::{Duration, Instant};

/// Options controlling the iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Convergence tolerance on the relative L1 balance residual
    /// `‖πQ‖₁ / ‖π∘exit‖₁`.
    pub tolerance: f64,
    /// Hard cap on the number of sweeps.
    pub max_sweeps: usize,
    /// SOR over-relaxation factor in `(0, 2)`; `1.0` is plain
    /// Gauss–Seidel.
    pub sor_omega: f64,
    /// How many sweeps between residual evaluations, for the solvers
    /// that pay a separate residual pass (the Gauss–Seidel and parallel
    /// solvers fuse the residual into every sweep and only use this as
    /// an upper bound on verification cadence). Values of `0` are
    /// treated as `1`: a zero cadence would otherwise never fire and
    /// silently disable convergence checks until `max_sweeps`.
    pub check_every: usize,
    /// Optional **wall-clock budget** for one solve. Checked at the
    /// residual-evaluation cadence; when it runs out the solver returns
    /// [`CtmcError::NotConverged`] carrying an exactly evaluated,
    /// finite residual for the current iterate (or
    /// [`CtmcError::Diverged`] if that residual is not finite). `None`
    /// (the default) means the sweep cap [`max_sweeps`](Self::max_sweeps)
    /// is the only budget. This is the guard that turns a stiff,
    /// near-reducible, or oscillating chain from a multi-minute hang
    /// into a structured, retryable failure.
    pub max_wall_time: Option<Duration>,
    /// **Divergence guard**: the solve aborts with
    /// [`CtmcError::Diverged`] as soon as an evaluated residual exceeds
    /// the best residual seen so far by this factor (or is NaN/∞,
    /// regardless of the factor). Must be `> 1`; `f64::INFINITY`
    /// disables the growth check (non-finite residuals still abort).
    /// The default `1e6` is far beyond the transient wobble of healthy
    /// warm starts while catching genuine blow-ups within a few sweeps
    /// instead of spinning to `max_sweeps`.
    pub divergence_factor: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-10,
            max_sweeps: 20_000,
            sor_omega: 1.0,
            check_every: 16,
            max_wall_time: None,
            divergence_factor: 1e6,
        }
    }
}

impl SolveOptions {
    /// A looser profile for quick exploration (tolerance `1e-8`).
    pub fn quick() -> Self {
        SolveOptions {
            tolerance: 1e-8,
            ..Self::default()
        }
    }

    /// Sets the tolerance, returning `self` for chaining.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the SOR factor, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `(0, 2)`.
    pub fn with_sor(mut self, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "SOR omega must lie in (0, 2)");
        self.sor_omega = omega;
        self
    }

    /// Sets the sweep cap, returning `self` for chaining.
    pub fn with_max_sweeps(mut self, max: usize) -> Self {
        self.max_sweeps = max;
        self
    }

    /// Sets the residual-check cadence, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero (which would disable convergence
    /// checks entirely).
    pub fn with_check_every(mut self, every: usize) -> Self {
        assert!(every > 0, "check cadence must be positive");
        self.check_every = every;
        self
    }

    /// Sets the wall-clock budget, returning `self` for chaining.
    pub fn with_wall_time(mut self, budget: Duration) -> Self {
        self.max_wall_time = Some(budget);
        self
    }

    /// Sets the divergence guard factor, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1` (the guard would fire on any
    /// non-monotone residual, including healthy warm-start wobble).
    pub fn with_divergence_factor(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "divergence factor must exceed 1");
        self.divergence_factor = factor;
        self
    }

    /// The check cadence with the zero guard applied.
    pub(crate) fn check_cadence(&self) -> usize {
        self.check_every.max(1)
    }
}

/// In-sweep health tracker shared by the iterative solvers: watches
/// every evaluated residual for NaN/∞ and runaway growth, and the wall
/// clock for budget exhaustion. One guard lives for one solve.
pub(crate) struct HealthGuard {
    deadline: Option<Instant>,
    divergence_factor: f64,
    best_residual: f64,
}

impl HealthGuard {
    pub(crate) fn new(opts: &SolveOptions) -> Self {
        HealthGuard {
            // checked_add: a caller passing Duration::MAX must exhaust
            // the sweep budget rather than overflow the deadline.
            deadline: opts
                .max_wall_time
                .and_then(|b| Instant::now().checked_add(b)),
            divergence_factor: opts.divergence_factor,
            best_residual: f64::INFINITY,
        }
    }

    /// Feeds a freshly evaluated residual to the divergence guard.
    ///
    /// # Errors
    ///
    /// [`CtmcError::Diverged`] if the residual is non-finite, or grew
    /// past `divergence_factor` times the best residual seen so far.
    pub(crate) fn observe(&mut self, sweeps: usize, residual: f64) -> Result<(), CtmcError> {
        if !residual.is_finite() {
            return Err(CtmcError::Diverged {
                iterations: sweeps,
                residual,
            });
        }
        if residual < self.best_residual {
            self.best_residual = residual;
        } else if self.divergence_factor.is_finite()
            && self.best_residual.is_finite()
            && residual > self.divergence_factor * self.best_residual.max(f64::MIN_POSITIVE)
        {
            return Err(CtmcError::Diverged {
                iterations: sweeps,
                residual,
            });
        }
        Ok(())
    }

    /// Whether the wall-clock budget has run out. Callers check this at
    /// their residual cadence (an `Instant::now` per sweep would be
    /// noticeable on small chains).
    pub(crate) fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The structured end-of-budget error: [`CtmcError::NotConverged`]
    /// carrying `exact_residual` when it is finite (the contract every
    /// budget-exhaustion path honours — callers evaluate the residual
    /// exactly on the frozen iterate first), [`CtmcError::Diverged`]
    /// otherwise.
    pub(crate) fn budget_error(sweeps: usize, exact_residual: f64, tolerance: f64) -> CtmcError {
        if exact_residual.is_finite() {
            CtmcError::NotConverged {
                iterations: sweeps,
                residual: exact_residual,
                tolerance,
            }
        } else {
            CtmcError::Diverged {
                iterations: sweeps,
                residual: exact_residual,
            }
        }
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The stationary distribution.
    pub pi: StationaryDistribution,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Relative L1 balance residual at termination.
    pub residual: f64,
}

/// Diagnostics of a workspace-based solve; the distribution itself
/// stays in the workspace ([`SolveWorkspace::pi`]).
#[derive(Debug, Clone, Copy)]
pub struct SolveStats {
    /// Sweeps performed.
    pub sweeps: usize,
    /// Relative L1 balance residual at termination.
    pub residual: f64,
    /// Exact residual evaluations paid during the solve (the fused
    /// per-sweep estimates of the Gauss–Seidel solvers are free and not
    /// counted). Surrogate accounting sums these across a template's
    /// lifetime to show what verification actually cost.
    pub residual_evals: usize,
}

/// Reusable buffers for the iterative solvers — the numeric half of the
/// symbolic/numeric split for repeated solves.
///
/// Parameter sweeps and fixed-point iterations solve the *same-shaped*
/// chain over and over with different rates; the allocating entry
/// points ([`solve_gauss_seidel`], [`crate::mbd::solve_mbd_projected`])
/// pay a fresh iterate vector plus solver scratch on every call. The
/// `_ws` variants ([`solve_gauss_seidel_ws`],
/// [`crate::mbd::solve_mbd_projected_ws`]) borrow everything from a
/// workspace instead: buffers are grown on first use and reused
/// afterwards, so repeated same-shape solves allocate nothing. The
/// solution is left in [`pi`](Self::pi) (doubling as the natural
/// rolling warm start for the next solve), and the allocating entry
/// points delegate to the `_ws` ones, so both paths run bit-identical
/// arithmetic.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// The iterate / final stationary vector.
    pub(crate) pi: Vec<f64>,
    /// Per-state exit rates (GS) or per-phase exit rates (MBD).
    pub(crate) exit: Vec<f64>,
    /// Tridiagonal right-hand side (MBD).
    pub(crate) rhs: Vec<f64>,
    /// Tridiagonal diagonal (MBD).
    pub(crate) diag: Vec<f64>,
    /// Thomas algorithm forward-elimination coefficients (MBD).
    pub(crate) cprime: Vec<f64>,
    /// Tridiagonal solution column (MBD).
    pub(crate) xcol: Vec<f64>,
    /// Per-level inflow accumulator for the residual pass (MBD).
    pub(crate) inflow: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distribution left behind by the last successful `_ws` solve.
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Empties the iterate buffer (capacity is kept). Callers that hit
    /// a solver error use this so a stale or non-converged iterate is
    /// never mistaken for a solution.
    pub fn clear_pi(&mut self) {
        self.pi.clear();
    }

    /// Moves the distribution out (leaving an empty buffer behind).
    pub(crate) fn take_pi(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.pi)
    }

    /// Installs an externally computed distribution as the workspace
    /// iterate — the hook that lets a direct solver (GTH) hand its
    /// answer to a workspace-driven warm-start chain. The values are
    /// copied verbatim; callers pass an already-normalized vector.
    pub fn set_pi(&mut self, pi: &[f64]) {
        self.pi.clear();
        self.pi.extend_from_slice(pi);
    }

    /// Final normalization of the solved iterate — exactly the
    /// arithmetic [`StationaryDistribution::new`] historically applied,
    /// so the workspace path and the allocating path produce
    /// bit-identical distributions.
    ///
    /// # Panics
    ///
    /// As [`StationaryDistribution::new`]: negative / non-finite
    /// entries or zero total mass (the solvers' own divergence guards
    /// fire first in practice).
    pub(crate) fn normalize_pi(&mut self) {
        let mut total = 0.0f64;
        for &p in &self.pi {
            assert!(
                p.is_finite() && p >= 0.0,
                "probabilities must be finite and >= 0"
            );
            total += p;
        }
        assert!(total > 0.0, "distribution must have positive total mass");
        for p in &mut self.pi {
            *p /= total;
        }
    }

    /// Mutable access to the iterate buffer, for callers that build the
    /// next warm start directly in place (extrapolation chains) instead
    /// of staging it in a side buffer and copying. The in-place solver
    /// entry points (`*_inplace_ws`) then normalize and iterate on the
    /// buffer as-is.
    pub fn pi_mut(&mut self) -> &mut Vec<f64> {
        &mut self.pi
    }

    /// Seeds the iterate from a warm start (normalized) or uniformly.
    pub(crate) fn init_pi(&mut self, n: usize, warm: Option<&[f64]>) -> Result<(), CtmcError> {
        self.pi.clear();
        match warm {
            Some(w) => {
                if w.len() != n {
                    return Err(CtmcError::DimensionMismatch {
                        expected: n,
                        actual: w.len(),
                    });
                }
                let total: f64 = w.iter().sum();
                if !total.is_finite()
                    || total <= 0.0
                    || w.iter().any(|&x| !x.is_finite() || x < 0.0)
                {
                    return Err(CtmcError::InvalidGenerator {
                        reason: "warm start must be non-negative with positive mass".into(),
                    });
                }
                self.pi.extend(w.iter().map(|&x| x / total));
            }
            None => self.pi.resize(n, 1.0 / n as f64),
        }
        Ok(())
    }

    /// Seeds the iterate from the buffer's current contents: the same
    /// validation and normalization arithmetic as [`Self::init_pi`]
    /// with `Some(w)` where `w` is the buffer itself (`x / total` per
    /// element, so bit-identical), minus the copy.
    pub(crate) fn init_pi_in_place(&mut self, n: usize) -> Result<(), CtmcError> {
        if self.pi.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: self.pi.len(),
            });
        }
        let total: f64 = self.pi.iter().sum();
        if !total.is_finite() || total <= 0.0 || self.pi.iter().any(|&x| !x.is_finite() || x < 0.0)
        {
            return Err(CtmcError::InvalidGenerator {
                reason: "warm start must be non-negative with positive mass".into(),
            });
        }
        for x in &mut self.pi {
            *x /= total;
        }
        Ok(())
    }

    /// Dispatches between the copying and in-place seeding paths.
    pub(crate) fn seed_pi(&mut self, n: usize, warm: WarmInit<'_>) -> Result<(), CtmcError> {
        match warm {
            WarmInit::Copy(w) => self.init_pi(n, w),
            WarmInit::InPlace => self.init_pi_in_place(n),
        }
    }
}

/// How an iterative solver seeds its iterate: copy (and normalize) an
/// external warm start / fall back to uniform, or normalize whatever
/// the caller already staged in the workspace's own `pi` buffer.
pub(crate) enum WarmInit<'a> {
    /// `Some`: normalize a copy of the given vector. `None`: uniform.
    Copy(Option<&'a [f64]>),
    /// Normalize `ws.pi` in place; errors if its length is wrong.
    InPlace,
}

/// Solves `πQ = 0` by Gauss–Seidel (or SOR) iteration.
///
/// `warm_start`, when given, seeds the iteration — reusing the solution of
/// a nearby parameter point typically cuts sweep counts by an order of
/// magnitude across a sweep. It does not need to be normalized but must
/// be non-negative with positive total mass.
///
/// # Errors
///
/// * [`CtmcError::EmptyChain`] for zero states.
/// * [`CtmcError::DimensionMismatch`] if the warm start has wrong length.
/// * [`CtmcError::NotConverged`] if `max_sweeps` is exhausted before the
///   residual drops below tolerance.
/// * [`CtmcError::InvalidGenerator`] if some state has zero exit rate
///   (absorbing states have no stationary counterpart in this solver).
///
/// # Example
///
/// ```
/// use gprs_ctmc::{TripletBuilder, solver, SolveOptions};
///
/// let mut b = TripletBuilder::new(3);
/// for i in 0..3 {
///     b.push(i, (i + 1) % 3, 1.0 + i as f64);
/// }
/// let sol = solver::solve_gauss_seidel(&b.build()?, None, &SolveOptions::default())?;
/// assert!(sol.residual <= 1e-10);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
pub fn solve_gauss_seidel<G: IncomingTransitions + ?Sized>(
    gen: &G,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<Solution, CtmcError> {
    let mut ws = SolveWorkspace::new();
    let stats = solve_gauss_seidel_ws(gen, warm_start, opts, &mut ws)?;
    Ok(Solution {
        // The workspace already applied the final normalization.
        pi: StationaryDistribution::from_normalized(ws.take_pi()),
        sweeps: stats.sweeps,
        residual: stats.residual,
    })
}

/// [`solve_gauss_seidel`] over a reusable [`SolveWorkspace`]: repeated
/// same-shape solves allocate nothing, and the solution is left in
/// `ws.pi()` (ready to serve as the next solve's warm start). The
/// arithmetic is identical to the allocating entry point, which
/// delegates here.
///
/// # Errors
///
/// As [`solve_gauss_seidel`].
pub fn solve_gauss_seidel_ws<G: IncomingTransitions + ?Sized>(
    gen: &G,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    let n = gen.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }

    // Pre-compute exit rates; every state must be able to leave.
    ws.exit.resize(n, 0.0);
    for (s, e) in ws.exit.iter_mut().enumerate() {
        *e = gen.exit_rate(s);
        if *e <= 0.0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("state {s} has zero exit rate (absorbing)"),
            });
        }
    }

    ws.init_pi(n, warm_start)?;
    let (pi, exit) = (&mut ws.pi, &ws.exit);

    let omega = opts.sor_omega;
    let mut guard = HealthGuard::new(opts);
    let mut sweeps = 0usize;
    let mut residual_evals = 0usize;
    let mut converged: Option<SolveStats> = None;

    while sweeps < opts.max_sweeps {
        // One forward Gauss–Seidel sweep (in place: uses freshly updated
        // values for already-visited states), accumulating the balance
        // residual of the pre-update values as it goes — so convergence
        // is observed every sweep without a second O(nnz) residual pass.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for j in 0..n {
            let mut inflow = 0.0f64;
            gen.for_each_incoming(j, &mut |i, rate| {
                inflow += pi[i] * rate;
            });
            let old = pi[j];
            num += (inflow - old * exit[j]).abs();
            den += old * exit[j];
            let new = inflow / exit[j];
            pi[j] = if omega == 1.0 {
                new
            } else {
                (1.0 - omega) * old + omega * new
            };
            if pi[j] < 0.0 {
                // Over-relaxation can momentarily produce tiny negatives.
                pi[j] = 0.0;
            }
        }
        // Renormalize to keep magnitudes in range.
        let total: f64 = pi.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(CtmcError::Diverged {
                iterations: sweeps + 1,
                residual: if den == 0.0 { f64::NAN } else { num / den },
            });
        }
        let inv = 1.0 / total;
        for p in pi.iter_mut() {
            *p *= inv;
        }
        sweeps += 1;

        // The fused estimate mixes pre- and mid-sweep values, so when it
        // signals convergence an exact evaluation on the frozen iterate
        // confirms before returning (once per solve, not per check).
        let residual = if den == 0.0 { 0.0 } else { num / den };
        guard.observe(sweeps, residual)?;
        if residual <= opts.tolerance {
            let exact = residual_incoming(gen, pi, exit);
            residual_evals += 1;
            if exact <= opts.tolerance {
                converged = Some(SolveStats {
                    sweeps,
                    residual: exact,
                    residual_evals,
                });
                break;
            }
        }
        if sweeps.is_multiple_of(opts.check_cadence()) && guard.out_of_time() {
            break;
        }
    }

    if let Some(stats) = converged {
        ws.normalize_pi();
        return Ok(stats);
    }
    // Budget exhausted (sweeps or wall clock): report the *exact*
    // residual of the frozen iterate, not the fused mid-sweep estimate
    // — `NotConverged` always carries a finite, trustworthy number.
    let exact = residual_incoming(gen, pi, exit);
    Err(HealthGuard::budget_error(sweeps, exact, opts.tolerance))
}

/// [`solve_gauss_seidel_ws`] specialized to a [`SparseGenerator`]: the
/// inner gather runs over the flat transpose CSR arrays instead of
/// paying a dynamic callback per edge, so the hot loop is a contiguous,
/// branch-free scan the compiler can keep in registers. Edge order per
/// state is exactly the `for_each_incoming` visitation order, so this
/// kernel is **bit-identical** to the generic one on the same inputs
/// (pinned by `csr_gs_matches_generic_bitwise` below).
///
/// # Errors
///
/// As [`solve_gauss_seidel`].
pub fn solve_gauss_seidel_csr_ws(
    gen: &crate::sparse::SparseGenerator,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    let n = gen.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }

    ws.exit.resize(n, 0.0);
    ws.exit.copy_from_slice(gen.exit_rates());
    for (s, e) in ws.exit.iter().enumerate() {
        if *e <= 0.0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("state {s} has zero exit rate (absorbing)"),
            });
        }
    }

    ws.init_pi(n, warm_start)?;
    let (pi, exit) = (&mut ws.pi, &ws.exit);
    let (tptr, tcol, tval) = gen.transpose_csr();

    let omega = opts.sor_omega;
    let mut guard = HealthGuard::new(opts);
    let mut sweeps = 0usize;
    let mut residual_evals = 0usize;
    let mut converged: Option<SolveStats> = None;

    while sweeps < opts.max_sweeps {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for j in 0..n {
            let mut inflow = 0.0f64;
            for e in tptr[j]..tptr[j + 1] {
                inflow += pi[tcol[e] as usize] * tval[e];
            }
            let old = pi[j];
            num += (inflow - old * exit[j]).abs();
            den += old * exit[j];
            let new = inflow / exit[j];
            pi[j] = if omega == 1.0 {
                new
            } else {
                (1.0 - omega) * old + omega * new
            };
            if pi[j] < 0.0 {
                pi[j] = 0.0;
            }
        }
        let total: f64 = pi.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(CtmcError::Diverged {
                iterations: sweeps + 1,
                residual: if den == 0.0 { f64::NAN } else { num / den },
            });
        }
        let inv = 1.0 / total;
        for p in pi.iter_mut() {
            *p *= inv;
        }
        sweeps += 1;

        let residual = if den == 0.0 { 0.0 } else { num / den };
        guard.observe(sweeps, residual)?;
        if residual <= opts.tolerance {
            let exact = residual_incoming_csr(tptr, tcol, tval, pi, exit);
            residual_evals += 1;
            if exact <= opts.tolerance {
                converged = Some(SolveStats {
                    sweeps,
                    residual: exact,
                    residual_evals,
                });
                break;
            }
        }
        if sweeps.is_multiple_of(opts.check_cadence()) && guard.out_of_time() {
            break;
        }
    }

    if let Some(stats) = converged {
        ws.normalize_pi();
        return Ok(stats);
    }
    let exact = residual_incoming_csr(tptr, tcol, tval, pi, exit);
    Err(HealthGuard::budget_error(sweeps, exact, opts.tolerance))
}

/// [`residual_incoming`] over flat transpose CSR arrays — same
/// accumulation order, bit-identical result.
fn residual_incoming_csr(
    tptr: &[usize],
    tcol: &[u32],
    tval: &[f64],
    pi: &[f64],
    exit: &[f64],
) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for j in 0..pi.len() {
        let mut inflow = 0.0f64;
        for e in tptr[j]..tptr[j + 1] {
            inflow += pi[tcol[e] as usize] * tval[e];
        }
        num += (inflow - pi[j] * exit[j]).abs();
        den += pi[j] * exit[j];
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Relative L1 balance residual computed via incoming transitions
/// (single pass, no extra `O(n)` flow buffer).
fn residual_incoming<G: IncomingTransitions + ?Sized>(gen: &G, pi: &[f64], exit: &[f64]) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for j in 0..pi.len() {
        let mut inflow = 0.0f64;
        gen.for_each_incoming(j, &mut |i, rate| {
            inflow += pi[i] * rate;
        });
        num += (inflow - pi[j] * exit[j]).abs();
        den += pi[j] * exit[j];
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gth::solve_gth;
    use crate::sparse::TripletBuilder;

    fn random_irreducible(n: usize, seed: u64) -> crate::sparse::SparseGenerator {
        let mut b = TripletBuilder::new(n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            b.push(i, (i + 1) % n, 0.5 + next());
            for j in 0..n {
                if j != i && next() < 0.2 {
                    b.push(i, j, next() * 5.0 + 1e-4);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_gth_on_random_chains() {
        for seed in [1u64, 42, 1234, 98765] {
            let g = random_irreducible(30, seed);
            let exact = solve_gth(&g).unwrap();
            let sol = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
            for s in 0..30 {
                assert!(
                    (exact[s] - sol.pi[s]).abs() < 1e-8,
                    "seed {seed} state {s}: {} vs {}",
                    exact[s],
                    sol.pi[s]
                );
            }
        }
    }

    #[test]
    fn warm_start_reduces_sweeps() {
        let g = random_irreducible(100, 7);
        let cold = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        let warm =
            solve_gauss_seidel(&g, Some(cold.pi.as_slice()), &SolveOptions::default()).unwrap();
        assert!(warm.sweeps <= cold.sweeps);
        assert!(warm.residual <= 1e-10);
    }

    #[test]
    fn sor_converges_too() {
        let g = random_irreducible(50, 3);
        let opts = SolveOptions::default().with_sor(1.3);
        let sol = solve_gauss_seidel(&g, None, &opts).unwrap();
        let exact = solve_gth(&g).unwrap();
        for s in 0..50 {
            assert!((exact[s] - sol.pi[s]).abs() < 1e-8);
        }
    }

    #[test]
    fn stiff_chain_converges() {
        // Slow/fast time-scale separation of 1e6.
        let mut b = TripletBuilder::new(4);
        b.push(0, 1, 1e-3);
        b.push(1, 0, 1e3);
        b.push(1, 2, 1e3);
        b.push(2, 3, 1e-3);
        b.push(3, 2, 1e3);
        b.push(2, 1, 1e-3);
        let g = b.build().unwrap();
        let exact = solve_gth(&g).unwrap();
        let sol = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        for s in 0..4 {
            let rel = (exact[s] - sol.pi[s]).abs() / exact[s].max(1e-300);
            assert!(rel < 1e-6, "state {s}: {} vs {}", exact[s], sol.pi[s]);
        }
    }

    #[test]
    fn absorbing_state_is_rejected() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        let err =
            solve_gauss_seidel(&b.build().unwrap(), None, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }

    #[test]
    fn not_converged_error_carries_diagnostics() {
        let g = random_irreducible(60, 11);
        let opts = SolveOptions::default().with_max_sweeps(1);
        match solve_gauss_seidel(&g, None, &opts) {
            Err(CtmcError::NotConverged {
                iterations,
                residual,
                tolerance,
            }) => {
                assert_eq!(iterations, 1);
                assert!(residual > tolerance);
                // Budget exhaustion reports the *exact* residual of the
                // frozen iterate — always finite, never a stale or
                // poisoned estimate.
                assert!(residual.is_finite());
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_budget_returns_not_converged_with_finite_residual() {
        let g = random_irreducible(60, 17);
        let opts = SolveOptions::default()
            .with_tolerance(1e-300)
            .with_check_every(1)
            .with_wall_time(Duration::ZERO);
        match solve_gauss_seidel(&g, None, &opts) {
            Err(CtmcError::NotConverged {
                iterations,
                residual,
                ..
            }) => {
                assert!(iterations < opts.max_sweeps, "budget never fired");
                assert!(residual.is_finite());
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
        // Same contract for the other iterative solvers.
        let pw = crate::power::solve_power(&g, None, &opts);
        match pw {
            Err(CtmcError::NotConverged { residual, .. }) => assert!(residual.is_finite()),
            other => panic!("expected NotConverged, got {other:?}"),
        }
        let par = crate::parallel::solve_parallel(&g, None, &opts);
        match par {
            Err(CtmcError::NotConverged { residual, .. }) => assert!(residual.is_finite()),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn health_guard_aborts_on_growth_and_nonfinite_residuals() {
        let opts = SolveOptions::default().with_divergence_factor(10.0);
        let mut g = HealthGuard::new(&opts);
        assert!(g.observe(1, 1e-3).is_ok());
        // Wobble within the factor is tolerated.
        assert!(g.observe(2, 5e-3).is_ok());
        match g.observe(3, 1.0) {
            Err(CtmcError::Diverged {
                iterations,
                residual,
            }) => {
                assert_eq!(iterations, 3);
                assert_eq!(residual, 1.0);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        let mut g2 = HealthGuard::new(&opts);
        assert!(matches!(
            g2.observe(1, f64::NAN),
            Err(CtmcError::Diverged { .. })
        ));
        // An infinite factor disables the growth check but never the
        // non-finite check.
        let mut g3 =
            HealthGuard::new(&SolveOptions::default().with_divergence_factor(f64::INFINITY));
        assert!(g3.observe(1, 1e-9).is_ok());
        assert!(g3.observe(2, 1e9).is_ok());
        assert!(matches!(
            g3.observe(3, f64::INFINITY),
            Err(CtmcError::Diverged { .. })
        ));
    }

    #[test]
    fn nonfinite_rates_abort_as_diverged() {
        // A generator reporting an infinite rate poisons the iterate in
        // one sweep; the solver must abort with `Diverged`, not panic in
        // normalization or spin to max_sweeps.
        struct InfRate;
        impl crate::transitions::Transitions for InfRate {
            fn num_states(&self) -> usize {
                2
            }
            fn for_each_outgoing(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
                visit(1 - state, f64::INFINITY);
            }
        }
        impl IncomingTransitions for InfRate {
            fn for_each_incoming(&self, state: usize, visit: &mut dyn FnMut(usize, f64)) {
                visit(1 - state, f64::INFINITY);
            }
        }
        let err = solve_gauss_seidel(&InfRate, None, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, CtmcError::Diverged { .. }), "got {err:?}");
        let err = crate::power::solve_power(&InfRate, None, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, CtmcError::Diverged { .. }), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "divergence factor")]
    fn divergence_factor_at_most_one_panics() {
        let _ = SolveOptions::default().with_divergence_factor(1.0);
    }

    #[test]
    fn warm_start_dimension_mismatch() {
        let g = random_irreducible(5, 13);
        let err = solve_gauss_seidel(&g, Some(&[1.0; 4]), &SolveOptions::default()).unwrap_err();
        assert_eq!(
            err,
            CtmcError::DimensionMismatch {
                expected: 5,
                actual: 4
            }
        );
    }

    #[test]
    #[should_panic(expected = "SOR omega")]
    fn invalid_sor_panics() {
        let _ = SolveOptions::default().with_sor(2.5);
    }

    #[test]
    #[should_panic(expected = "check cadence")]
    fn zero_check_cadence_panics() {
        let _ = SolveOptions::default().with_check_every(0);
    }

    #[test]
    fn zero_check_every_is_guarded() {
        // A hand-built options value with check_every = 0 must still
        // converge (historically the cadence test `sweeps % 0` never
        // fired, disabling checks until max_sweeps).
        let opts = SolveOptions {
            check_every: 0,
            ..SolveOptions::default()
        };
        assert_eq!(opts.check_cadence(), 1);
        let g = random_irreducible(20, 9);
        let sol = solve_gauss_seidel(&g, None, &opts).unwrap();
        assert!(sol.residual <= opts.tolerance);
        assert!(sol.sweeps < opts.max_sweeps);
        let power = crate::power::solve_power(&g, None, &opts).unwrap();
        assert!(power.residual <= opts.tolerance);
    }

    #[test]
    fn csr_gs_matches_generic_bitwise() {
        // The flat-CSR kernel is a pure layout specialization: same
        // sweep count, same residual bits, same iterate bits as the
        // callback-driven generic solver, warm or cold, GS or SOR.
        for (seed, omega) in [(2u64, 1.0), (77, 1.1), (4242, 0.8)] {
            let g = random_irreducible(40, seed);
            let opts = SolveOptions::default().with_sor(omega);
            let mut ws_a = SolveWorkspace::new();
            let mut ws_b = SolveWorkspace::new();
            let a = solve_gauss_seidel_ws(&g, None, &opts, &mut ws_a).unwrap();
            let b = solve_gauss_seidel_csr_ws(&g, None, &opts, &mut ws_b).unwrap();
            assert_eq!(a.sweeps, b.sweeps, "seed {seed}");
            assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "seed {seed}");
            assert_eq!(a.residual_evals, b.residual_evals, "seed {seed}");
            for (s, (x, y)) in ws_a.pi().iter().zip(ws_b.pi()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} state {s}");
            }
            // Warm restart from the solution: both finish in one sweep.
            // (Copied out first: the workspace is mutably borrowed by
            // the solve itself.)
            let pa = ws_a.pi().to_vec();
            let pb = ws_b.pi().to_vec();
            let wa = solve_gauss_seidel_ws(&g, Some(&pa), &opts, &mut ws_a);
            let wb = solve_gauss_seidel_csr_ws(&g, Some(&pb), &opts, &mut ws_b);
            let (wa, wb) = (wa.unwrap(), wb.unwrap());
            assert_eq!(wa.sweeps, wb.sweeps);
            assert_eq!(wa.residual.to_bits(), wb.residual.to_bits());
        }
    }

    #[test]
    fn converges_at_exact_sweep_not_cadence_multiple() {
        // The fused residual observes convergence every sweep; a restart
        // from the solution must finish in a single sweep even though
        // check_every is 16.
        let g = random_irreducible(50, 21);
        let first = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        let again =
            solve_gauss_seidel(&g, Some(first.pi.as_slice()), &SolveOptions::default()).unwrap();
        assert_eq!(again.sweeps, 1);
    }
}
