//! Uniformization-based power iteration.
//!
//! The chain is uniformized with constant `Λ ≥ max exit rate`, giving the
//! stochastic matrix `P = I + Q/Λ`, whose stationary vector equals the
//! CTMC's. Power iteration `π ← πP` only needs *outgoing* transitions
//! ("push" style), which makes it a useful cross-check for the
//! Gauss–Seidel solver and for models that cannot enumerate incoming
//! transitions. Convergence is geometric in the subdominant eigenvalue,
//! which for stiff chains is painfully close to 1 — prefer
//! [`crate::solver::solve_gauss_seidel`] for production runs.

use crate::error::CtmcError;
use crate::solver::{HealthGuard, Solution, SolveOptions};
use crate::stationary::StationaryDistribution;
use crate::transitions::{balance_residual, Transitions};

/// Head-room factor applied to the maximum exit rate when uniformizing;
/// keeps the self-loop probability strictly positive, which breaks
/// periodicity.
pub const UNIFORMIZATION_HEADROOM: f64 = 1.02;

/// Solves `πQ = 0` by uniformized power iteration.
///
/// See the module docs for when to prefer this over Gauss–Seidel.
///
/// # Errors
///
/// Same contract as [`crate::solver::solve_gauss_seidel`]; additionally
/// returns [`CtmcError::InvalidGenerator`] if no state has a positive
/// exit rate.
pub fn solve_power<G: Transitions + ?Sized>(
    gen: &G,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<Solution, CtmcError> {
    let n = gen.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }

    let mut exit = vec![0.0f64; n];
    let mut max_exit = 0.0f64;
    for (s, e) in exit.iter_mut().enumerate() {
        *e = gen.exit_rate(s);
        max_exit = max_exit.max(*e);
    }
    if max_exit <= 0.0 {
        return Err(CtmcError::InvalidGenerator {
            reason: "no state has a positive exit rate".into(),
        });
    }
    let lambda = max_exit * UNIFORMIZATION_HEADROOM;

    let mut pi: Vec<f64> = match warm_start {
        Some(w) => {
            if w.len() != n {
                return Err(CtmcError::DimensionMismatch {
                    expected: n,
                    actual: w.len(),
                });
            }
            let total: f64 = w.iter().sum();
            if !total.is_finite() || total <= 0.0 || w.iter().any(|&x| !x.is_finite() || x < 0.0) {
                return Err(CtmcError::InvalidGenerator {
                    reason: "warm start must be non-negative with positive mass".into(),
                });
            }
            w.iter().map(|&x| x / total).collect()
        }
        None => vec![1.0 / n as f64; n],
    };
    let mut next = vec![0.0f64; n];

    let mut guard = HealthGuard::new(opts);
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    while iterations < opts.max_sweeps {
        next.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..n {
            let p = pi[i];
            if p == 0.0 {
                continue;
            }
            gen.for_each_outgoing(i, &mut |j, rate| {
                next[j] += p * rate / lambda;
            });
            next[i] += p * (1.0 - exit[i] / lambda);
        }
        let total: f64 = next.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(CtmcError::Diverged {
                iterations: iterations + 1,
                residual: f64::NAN,
            });
        }
        let inv = 1.0 / total;
        for x in &mut next {
            *x *= inv;
        }
        std::mem::swap(&mut pi, &mut next);
        iterations += 1;

        if iterations.is_multiple_of(opts.check_cadence()) || iterations == opts.max_sweeps {
            residual = balance_residual(gen, &pi);
            guard.observe(iterations, residual)?;
            if residual <= opts.tolerance {
                return Ok(Solution {
                    pi: StationaryDistribution::new(pi),
                    sweeps: iterations,
                    residual,
                });
            }
            if guard.out_of_time() {
                break;
            }
        }
    }

    // `balance_residual` at the cadence above is exact; re-evaluate only
    // if the loop never ran (`max_sweeps == 0`).
    let exact = if residual.is_finite() {
        residual
    } else {
        balance_residual(gen, &pi)
    };
    Err(HealthGuard::budget_error(iterations, exact, opts.tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gth::solve_gth;
    use crate::sparse::TripletBuilder;

    #[test]
    fn matches_gth_on_small_chain() {
        let mut b = TripletBuilder::new(4);
        b.push(0, 1, 1.0);
        b.push(1, 2, 2.0);
        b.push(2, 3, 3.0);
        b.push(3, 0, 4.0);
        b.push(2, 0, 0.7);
        let g = b.build().unwrap();
        let exact = solve_gth(&g).unwrap();
        let opts = SolveOptions::default().with_max_sweeps(200_000);
        let sol = solve_power(&g, None, &opts).unwrap();
        for s in 0..4 {
            assert!((exact[s] - sol.pi[s]).abs() < 1e-8, "state {s}");
        }
    }

    #[test]
    fn periodic_chain_converges_thanks_to_headroom() {
        // A pure 2-cycle is periodic under the embedded DTMC; the
        // uniformization head-room adds self-loops that break it.
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let g = b.build().unwrap();
        let sol = solve_power(&g, None, &SolveOptions::default()).unwrap();
        assert!((sol.pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_gauss_seidel() {
        let mut b = TripletBuilder::new(6);
        for i in 0..6 {
            b.push(i, (i + 1) % 6, 1.0 + 0.3 * i as f64);
            b.push(i, (i + 2) % 6, 0.2);
        }
        let g = b.build().unwrap();
        let gs = crate::solver::solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        let pw = solve_power(&g, None, &SolveOptions::default().with_max_sweeps(100_000)).unwrap();
        for s in 0..6 {
            assert!((gs.pi[s] - pw.pi[s]).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_all_zero_rates_chain() {
        // Chain where the only pushed rates are zero => no transitions.
        let b = TripletBuilder::new(3);
        let g = b.build().unwrap();
        let err = solve_power(&g, None, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }
}
