//! Block solver for Markov-modulated birth–death (MBD) processes.
//!
//! Many queueing CTMCs — the GPRS model among them — have states
//! `(phase, level)` where *level* transitions move `level ± 1` without
//! changing the phase, and *phase* transitions never change the level.
//! Point Gauss–Seidel is painfully slow on such chains when the level
//! dynamics are orders of magnitude faster than the phase dynamics
//! (packet service at tens per second vs. session changes at one per
//! hundreds of seconds): thousands of sweeps are spent re-equilibrating
//! the fast direction.
//!
//! The block method here sweeps over *phases*, solving each phase's
//! entire level column **exactly** with the Thomas algorithm (the
//! per-phase balance equations form a strictly diagonally dominant
//! tridiagonal system, because the phase-exit rate is constant across
//! levels). Convergence is then governed by the well-behaved phase
//! chain alone — on the GPRS model this cuts iteration counts by two
//! orders of magnitude versus point Gauss–Seidel.

// Indexed loops mirror the textbook linear-algebra formulations these
// kernels implement; iterator rewrites obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

use crate::error::CtmcError;
use crate::solver::{HealthGuard, Solution, SolveOptions, SolveStats, SolveWorkspace, WarmInit};
use crate::stationary::StationaryDistribution;

/// Structural access to a Markov-modulated birth–death chain.
///
/// States are pairs `(phase, level)` with `phase < num_phases()` and
/// `level < num_levels()`. The implied flat index is
/// `phase * num_levels() + level` — the solver returns distributions in
/// this layout.
pub trait ModulatedBirthDeath {
    /// Number of phases.
    fn num_phases(&self) -> usize;

    /// Number of levels (e.g. buffer capacity + 1).
    fn num_levels(&self) -> usize;

    /// Rate of `level → level + 1` in `phase` (0 for the top level).
    fn birth_rate(&self, phase: usize, level: usize) -> f64;

    /// Rate of `level → level − 1` in `phase` (0 for level 0).
    fn death_rate(&self, phase: usize, level: usize) -> f64;

    /// Visits each outgoing phase transition `(target_phase, rate)` of
    /// `phase`. Rates must not depend on the level.
    fn for_each_phase_outgoing(&self, phase: usize, visit: &mut dyn FnMut(usize, f64));

    /// Visits each incoming phase transition `(source_phase, rate)` into
    /// `phase`.
    fn for_each_phase_incoming(&self, phase: usize, visit: &mut dyn FnMut(usize, f64));

    /// Total phase-exit rate of `phase` (sum of outgoing phase rates).
    fn phase_exit_rate(&self, phase: usize) -> f64 {
        let mut total = 0.0;
        self.for_each_phase_outgoing(phase, &mut |_, rate| total += rate);
        total
    }
}

/// Solves an MBD chain for its stationary distribution by block
/// Gauss–Seidel over phases with exact tridiagonal level solves.
///
/// The returned distribution is indexed `phase * num_levels() + level`.
///
/// # Errors
///
/// * [`CtmcError::EmptyChain`] — no phases or no levels.
/// * [`CtmcError::DimensionMismatch`] — wrong warm-start length.
/// * [`CtmcError::InvalidGenerator`] — a phase with zero exit rate and
///   no way to receive probability (degenerate chain), or invalid warm
///   start.
/// * [`CtmcError::NotConverged`] — iteration cap exhausted.
///
/// # Example
///
/// An M/M/1/K queue whose arrival stream is modulated by a two-phase
/// on/off process (a miniature of the GPRS chain):
///
/// ```
/// use gprs_ctmc::mbd::{solve_mbd, ModulatedBirthDeath};
/// use gprs_ctmc::SolveOptions;
///
/// struct OnOffQueue;
/// impl ModulatedBirthDeath for OnOffQueue {
///     fn num_phases(&self) -> usize { 2 }
///     fn num_levels(&self) -> usize { 5 }
///     fn birth_rate(&self, phase: usize, level: usize) -> f64 {
///         if phase == 0 && level < 4 { 2.0 } else { 0.0 } // arrivals while on
///     }
///     fn death_rate(&self, _phase: usize, level: usize) -> f64 {
///         if level > 0 { 3.0 } else { 0.0 } // service
///     }
///     fn for_each_phase_outgoing(&self, phase: usize, v: &mut dyn FnMut(usize, f64)) {
///         v(1 - phase, 0.5); // on <-> off at rate 0.5
///     }
///     fn for_each_phase_incoming(&self, phase: usize, v: &mut dyn FnMut(usize, f64)) {
///         v(1 - phase, 0.5);
///     }
/// }
///
/// let sol = solve_mbd(&OnOffQueue, None, &SolveOptions::default())?;
/// // Symmetric switching: each phase carries half the mass.
/// let on_mass: f64 = sol.pi.as_slice()[..5].iter().sum();
/// assert!((on_mass - 0.5).abs() < 1e-8);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
pub fn solve_mbd<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<Solution, CtmcError> {
    let mut ws = SolveWorkspace::new();
    let stats = solve_mbd_inner(gen, None, WarmInit::Copy(warm_start), opts, &mut ws)?;
    Ok(solution_from(&mut ws, stats))
}

/// [`solve_mbd`] over a reusable [`SolveWorkspace`]; the solution is
/// left in `ws.pi()` and repeated same-shape solves allocate nothing.
///
/// # Errors
///
/// As [`solve_mbd`].
pub fn solve_mbd_ws<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    solve_mbd_inner(gen, None, WarmInit::Copy(warm_start), opts, ws)
}

fn solution_from(ws: &mut SolveWorkspace, stats: SolveStats) -> Solution {
    Solution {
        // The workspace already applied the final normalization.
        pi: StationaryDistribution::from_normalized(ws.take_pi()),
        sweeps: stats.sweeps,
        residual: stats.residual,
    }
}

/// Like [`solve_mbd`], but additionally *projects* onto a known exact
/// phase marginal after every sweep: each phase column is rescaled so
/// its total mass equals `phase_marginal[p]`.
///
/// This is an aggregation/disaggregation acceleration with an **exact**
/// aggregate solution. It applies when the phase process is itself
/// Markov (phase rates never depend on the level — already an MBD
/// requirement) *and* its stationary law is known in closed form, as in
/// the GPRS model where the `(n, m, r)` marginal is a product of Erlang
/// and binomial distributions. The slow phase-mixing error modes that
/// dominate plain block Gauss–Seidel are annihilated each sweep, leaving
/// only the fast within-column dynamics to converge — typically an
/// order of magnitude fewer sweeps.
///
/// # Errors
///
/// As [`solve_mbd`], plus [`CtmcError::DimensionMismatch`] if
/// `phase_marginal` has the wrong length and
/// [`CtmcError::InvalidGenerator`] if it is not a probability vector.
pub fn solve_mbd_projected<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    phase_marginal: &[f64],
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<Solution, CtmcError> {
    let mut ws = SolveWorkspace::new();
    let stats = solve_mbd_projected_ws(gen, phase_marginal, warm_start, opts, &mut ws)?;
    Ok(solution_from(&mut ws, stats))
}

/// [`solve_mbd_projected`] over a reusable [`SolveWorkspace`]: the
/// iterate, the per-phase exit rates, the Thomas-algorithm scratch and
/// the residual accumulator are all borrowed from `ws`, so repeated
/// same-shape solves (a parameter sweep, a fixed-point iteration)
/// allocate nothing after the first call. The solution is left in
/// `ws.pi()` — ready to be used (or extrapolated) as the next solve's
/// warm start. The allocating entry point delegates here, so the two
/// run bit-identical arithmetic.
///
/// # Errors
///
/// As [`solve_mbd_projected`].
pub fn solve_mbd_projected_ws<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    phase_marginal: &[f64],
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    validate_phase_marginal(gen.num_phases(), phase_marginal)?;
    solve_mbd_inner(
        gen,
        Some(phase_marginal),
        WarmInit::Copy(warm_start),
        opts,
        ws,
    )
}

/// [`solve_mbd_projected_ws`] seeded **in place**: the warm start is
/// whatever the caller staged in `ws.pi()` (via
/// [`SolveWorkspace::pi_mut`]) — it is normalized and iterated on
/// without the copy the `warm_start: Option<&[f64]>` entry points pay.
/// The arithmetic is bit-identical to passing the same vector through
/// [`solve_mbd_projected_ws`].
///
/// # Errors
///
/// As [`solve_mbd_projected`]; additionally
/// [`CtmcError::DimensionMismatch`] if the staged iterate has the wrong
/// length and [`CtmcError::InvalidGenerator`] if it is not non-negative
/// with positive mass.
pub fn solve_mbd_projected_inplace_ws<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    phase_marginal: &[f64],
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    validate_phase_marginal(gen.num_phases(), phase_marginal)?;
    solve_mbd_inner(gen, Some(phase_marginal), WarmInit::InPlace, opts, ws)
}

/// Shared marginal validation of the projected solvers (scalar here,
/// blocked in [`crate::blocked`]) — one definition so both entry points
/// reject exactly the same inputs.
pub(crate) fn validate_phase_marginal(
    expected_phases: usize,
    phase_marginal: &[f64],
) -> Result<(), CtmcError> {
    if phase_marginal.len() != expected_phases {
        return Err(CtmcError::DimensionMismatch {
            expected: expected_phases,
            actual: phase_marginal.len(),
        });
    }
    let total: f64 = phase_marginal.iter().sum();
    if phase_marginal.iter().any(|&x| !x.is_finite() || x < 0.0) || (total - 1.0).abs() > 1e-6 {
        return Err(CtmcError::InvalidGenerator {
            reason: "phase marginal must be a probability vector".into(),
        });
    }
    Ok(())
}

fn solve_mbd_inner<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    phase_marginal: Option<&[f64]>,
    warm_start: WarmInit<'_>,
    opts: &SolveOptions,
    ws: &mut SolveWorkspace,
) -> Result<SolveStats, CtmcError> {
    let p_count = gen.num_phases();
    let l_count = gen.num_levels();
    let n = p_count * l_count;
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }

    ws.seed_pi(n, warm_start)?;
    let SolveWorkspace {
        pi,
        exit: phase_exit,
        rhs,
        diag,
        cprime,
        xcol,
        inflow,
    } = ws;

    // Pre-compute per-phase constants.
    phase_exit.resize(p_count, 0.0);
    for (p, e) in phase_exit.iter_mut().enumerate() {
        *e = gen.phase_exit_rate(p);
    }

    // Thomas algorithm scratch space (every element is written before
    // it is read, so stale values from a previous solve are harmless).
    rhs.resize(l_count, 0.0);
    diag.resize(l_count, 0.0);
    cprime.resize(l_count, 0.0);
    xcol.resize(l_count, 0.0);
    let omega = opts.sor_omega;

    let mut guard = HealthGuard::new(opts);
    let mut sweeps = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_evals = 0usize;
    let mut converged: Option<SolveStats> = None;

    'sweep: while sweeps < opts.max_sweeps {
        // Alternate sweep direction (symmetric Gauss–Seidel): upstream
        // information that a forward sweep moves by only one phase per
        // iteration is carried across the whole chain by the backward
        // pass, which matters for the random-walk-like phase chains of
        // queueing models.
        let forward = sweeps.is_multiple_of(2);
        for step in 0..p_count {
            let p = if forward { step } else { p_count - 1 - step };
            let d_p = phase_exit[p];
            // Gather inflow from other phases (level-parallel).
            for x in rhs.iter_mut() {
                *x = 0.0;
            }
            gen.for_each_phase_incoming(p, &mut |q, rate| {
                let base = q * l_count;
                for (l, x) in rhs.iter_mut().enumerate() {
                    *x += rate * pi[base + l];
                }
            });

            if d_p <= 0.0 {
                // No phase coupling out of p: the whole chain must
                // consist of this single phase for a solution to exist.
                if p_count > 1 {
                    return Err(CtmcError::InvalidGenerator {
                        reason: format!("phase {p} has zero exit rate in a multi-phase chain"),
                    });
                }
                // Single birth-death chain: solve directly below with
                // the unnormalized product form.
                solve_single_birth_death(gen, pi);
                converged = Some(SolveStats {
                    sweeps: 1,
                    residual: 0.0,
                    residual_evals,
                });
                break 'sweep;
            }

            // Solve the tridiagonal system
            //   (d_p + α(l) + σ(l))·x(l) − α(l−1)·x(l−1) − σ(l+1)·x(l+1) = rhs(l)
            // by the Thomas algorithm. Strict diagonal dominance (d_p >
            // 0) guarantees stability and positivity.
            for l in 0..l_count {
                diag[l] = d_p + gen.birth_rate(p, l) + gen.death_rate(p, l);
            }
            // Forward elimination.
            let mut beta = diag[0];
            cprime[0] = -gen.death_rate(p, 1.min(l_count - 1)) / beta;
            rhs[0] /= beta;
            for l in 1..l_count {
                let a_l = -gen.birth_rate(p, l - 1); // sub-diagonal
                beta = diag[l] - a_l * cprime[l - 1];
                let c_l = if l + 1 < l_count {
                    -gen.death_rate(p, l + 1)
                } else {
                    0.0
                };
                cprime[l] = c_l / beta;
                rhs[l] = (rhs[l] - a_l * rhs[l - 1]) / beta;
            }
            // Back substitution, then (block-)SOR blend into pi.
            let base = p * l_count;
            xcol[l_count - 1] = rhs[l_count - 1].max(0.0);
            for l in (0..l_count - 1).rev() {
                xcol[l] = (rhs[l] - cprime[l] * xcol[l + 1]).max(0.0);
            }
            if omega == 1.0 {
                pi[base..base + l_count].copy_from_slice(xcol);
            } else {
                for l in 0..l_count {
                    let v = (1.0 - omega) * pi[base + l] + omega * xcol[l];
                    pi[base + l] = v.max(0.0);
                }
            }
        }

        if let Some(marginal) = phase_marginal {
            // Aggregation/disaggregation projection: force each phase
            // column to carry exactly its known stationary mass. This
            // also normalizes (Σ marginal = 1).
            for p in 0..p_count {
                let base = p * l_count;
                let col = &mut pi[base..base + l_count];
                let mass: f64 = col.iter().sum();
                if mass > 0.0 {
                    let scale = marginal[p] / mass;
                    for x in col {
                        *x *= scale;
                    }
                } else {
                    // Degenerate column: respread its mass uniformly.
                    let v = marginal[p] / l_count as f64;
                    for x in col {
                        *x = v;
                    }
                }
            }
        } else {
            // Normalize.
            let total: f64 = pi.iter().sum();
            if !total.is_finite() || total <= 0.0 {
                return Err(CtmcError::Diverged {
                    iterations: sweeps + 1,
                    residual: f64::NAN,
                });
            }
            let inv = 1.0 / total;
            for x in pi.iter_mut() {
                *x *= inv;
            }
        }
        sweeps += 1;

        if sweeps.is_multiple_of(opts.check_every.clamp(1, 4)) || sweeps == opts.max_sweeps {
            residual = mbd_residual(gen, pi, phase_exit, inflow);
            residual_evals += 1;
            guard.observe(sweeps, residual)?;
            if residual <= opts.tolerance {
                converged = Some(SolveStats {
                    sweeps,
                    residual,
                    residual_evals,
                });
                break 'sweep;
            }
            if guard.out_of_time() {
                break 'sweep;
            }
        }
    }

    if let Some(stats) = converged {
        ws.normalize_pi();
        return Ok(stats);
    }
    // `mbd_residual` is already an exact evaluation, but the loop may
    // have been skipped entirely (`max_sweeps == 0`) — re-evaluate so
    // `NotConverged` always carries the true residual of the iterate.
    let exact = if residual.is_finite() {
        residual
    } else {
        mbd_residual(gen, pi, phase_exit, inflow)
    };
    Err(HealthGuard::budget_error(sweeps, exact, opts.tolerance))
}

/// Exact solution of a single-phase birth-death chain (product form with
/// rescaling), used for the degenerate one-phase case.
fn solve_single_birth_death<G: ModulatedBirthDeath + ?Sized>(gen: &G, pi: &mut [f64]) {
    let l_count = gen.num_levels();
    pi[0] = 1.0;
    let mut total = 1.0;
    for l in 1..l_count {
        let b = gen.birth_rate(0, l - 1);
        let d = gen.death_rate(0, l);
        pi[l] = if d > 0.0 { pi[l - 1] * b / d } else { 0.0 };
        total += pi[l];
    }
    for x in pi.iter_mut() {
        *x /= total;
    }
}

/// Relative L1 balance residual of the full MBD chain. `inflow` is a
/// caller-owned per-level scratch buffer (resized here), so the hot
/// check path of repeated solves allocates nothing.
fn mbd_residual<G: ModulatedBirthDeath + ?Sized>(
    gen: &G,
    pi: &[f64],
    phase_exit: &[f64],
    inflow: &mut Vec<f64>,
) -> f64 {
    let p_count = gen.num_phases();
    let l_count = gen.num_levels();
    inflow.resize(l_count, 0.0);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for p in 0..p_count {
        let base = p * l_count;
        // Inflow from other phases, per level.
        inflow.fill(0.0);
        gen.for_each_phase_incoming(p, &mut |q, rate| {
            let qbase = q * l_count;
            for (l, x) in inflow.iter_mut().enumerate() {
                *x += rate * pi[qbase + l];
            }
        });
        for l in 0..l_count {
            let birth = gen.birth_rate(p, l);
            let death = gen.death_rate(p, l);
            let exit = phase_exit[p] + birth + death;
            let mut inf = inflow[l];
            if l > 0 {
                inf += pi[base + l - 1] * gen.birth_rate(p, l - 1);
            }
            if l + 1 < l_count {
                inf += pi[base + l + 1] * gen.death_rate(p, l + 1);
            }
            num += (inf - pi[base + l] * exit).abs();
            den += pi[base + l] * exit;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Exact relative L1 balance residual of an arbitrary iterate `pi` on
/// the MBD chain — the verification half of the predict-and-verify
/// sweep surrogate when the blocked tables are disabled. Allocates
/// small per-phase/per-level scratch on each call; the blocked variant
/// ([`crate::blocked::BlockedMbd::residual`]) reuses captured tables
/// and computes bit-identical values.
pub fn mbd_residual_of<G: ModulatedBirthDeath + ?Sized>(gen: &G, pi: &[f64]) -> f64 {
    let mut phase_exit = vec![0.0; gen.num_phases()];
    for (p, e) in phase_exit.iter_mut().enumerate() {
        *e = gen.phase_exit_rate(p);
    }
    let mut inflow = Vec::new();
    mbd_residual(gen, pi, &phase_exit, &mut inflow)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::gth::solve_gth;
    use crate::sparse::TripletBuilder;

    /// A small random MBD chain with explicit tables, also expressible
    /// as a generic sparse generator for cross-validation. Shared with
    /// the blocked-kernel tests (`crate::blocked`).
    pub(crate) struct TableMbd {
        phases: usize,
        levels: usize,
        birth: Vec<f64>,                     // [phase][level]
        death: Vec<f64>,                     // [phase][level]
        phase_rates: Vec<Vec<(usize, f64)>>, // outgoing per phase
    }

    impl TableMbd {
        pub(crate) fn random(phases: usize, levels: usize, seed: u64) -> Self {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut birth = vec![0.0; phases * levels];
            let mut death = vec![0.0; phases * levels];
            for p in 0..phases {
                for l in 0..levels {
                    if l + 1 < levels {
                        birth[p * levels + l] = 1.0 + 10.0 * next();
                    }
                    if l > 0 {
                        death[p * levels + l] = 1.0 + 10.0 * next();
                    }
                }
            }
            // Ring + random extra phase transitions (slow time scale).
            let mut phase_rates = vec![Vec::new(); phases];
            for p in 0..phases {
                phase_rates[p].push(((p + 1) % phases, 0.01 + 0.05 * next()));
                if phases > 2 && next() < 0.5 {
                    let q = (p + 2) % phases;
                    phase_rates[p].push((q, 0.01 * next()));
                }
            }
            TableMbd {
                phases,
                levels,
                birth,
                death,
                phase_rates,
            }
        }

        /// The same chain with every phase-transition rate scaled by
        /// `factor` — identical pattern and birth/death tables, moved
        /// phase-coupling rates (the partial-recapture contract).
        pub(crate) fn with_scaled_phase_rates(&self, factor: f64) -> Self {
            let mut scaled = TableMbd {
                phases: self.phases,
                levels: self.levels,
                birth: self.birth.clone(),
                death: self.death.clone(),
                phase_rates: self.phase_rates.clone(),
            };
            for edges in &mut scaled.phase_rates {
                for (_, rate) in edges.iter_mut() {
                    *rate *= factor;
                }
            }
            scaled
        }

        pub(crate) fn to_sparse(&self) -> crate::sparse::SparseGenerator {
            let n = self.phases * self.levels;
            let mut b = TripletBuilder::new(n);
            for p in 0..self.phases {
                for l in 0..self.levels {
                    let idx = p * self.levels + l;
                    let br = self.birth[idx];
                    if br > 0.0 {
                        b.push(idx, idx + 1, br);
                    }
                    let dr = self.death[idx];
                    if dr > 0.0 {
                        b.push(idx, idx - 1, dr);
                    }
                    for &(q, rate) in &self.phase_rates[p] {
                        b.push(idx, q * self.levels + l, rate);
                    }
                }
            }
            b.build().unwrap()
        }
    }

    impl ModulatedBirthDeath for TableMbd {
        fn num_phases(&self) -> usize {
            self.phases
        }
        fn num_levels(&self) -> usize {
            self.levels
        }
        fn birth_rate(&self, p: usize, l: usize) -> f64 {
            self.birth[p * self.levels + l]
        }
        fn death_rate(&self, p: usize, l: usize) -> f64 {
            self.death[p * self.levels + l]
        }
        fn for_each_phase_outgoing(&self, p: usize, visit: &mut dyn FnMut(usize, f64)) {
            for &(q, rate) in &self.phase_rates[p] {
                visit(q, rate);
            }
        }
        fn for_each_phase_incoming(&self, p: usize, visit: &mut dyn FnMut(usize, f64)) {
            for q in 0..self.phases {
                for &(t, rate) in &self.phase_rates[q] {
                    if t == p {
                        visit(q, rate);
                    }
                }
            }
        }
    }

    #[test]
    fn matches_gth_on_random_mbd_chains() {
        for seed in [1u64, 7, 42, 1001] {
            let mbd = TableMbd::random(5, 8, seed);
            let sparse = mbd.to_sparse();
            let exact = solve_gth(&sparse).unwrap();
            let sol = solve_mbd(&mbd, None, &SolveOptions::default()).unwrap();
            for i in 0..sparse.num_states() {
                assert!(
                    (exact[i] - sol.pi[i]).abs() < 1e-8,
                    "seed {seed} state {i}: {} vs {}",
                    exact[i],
                    sol.pi[i]
                );
            }
        }
    }

    #[test]
    fn stiff_mbd_converges_quickly() {
        // Fast levels (rates ~10) with very slow phases (rates ~0.01):
        // exactly the regime that cripples point Gauss-Seidel.
        let mbd = TableMbd::random(8, 30, 99);
        let sol = solve_mbd(&mbd, None, &SolveOptions::default()).unwrap();
        assert!(
            sol.sweeps < 500,
            "block method should converge fast, took {}",
            sol.sweeps
        );
        let sparse = mbd.to_sparse();
        let exact = solve_gth(&sparse).unwrap();
        for i in 0..sparse.num_states() {
            assert!((exact[i] - sol.pi[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_start_converges_immediately() {
        let mbd = TableMbd::random(4, 10, 3);
        let first = solve_mbd(&mbd, None, &SolveOptions::default()).unwrap();
        let second = solve_mbd(&mbd, Some(first.pi.as_slice()), &SolveOptions::default()).unwrap();
        assert!(second.sweeps <= 4);
    }

    #[test]
    fn single_phase_is_plain_birth_death() {
        struct OnePhase;
        impl ModulatedBirthDeath for OnePhase {
            fn num_phases(&self) -> usize {
                1
            }
            fn num_levels(&self) -> usize {
                4
            }
            fn birth_rate(&self, _p: usize, l: usize) -> f64 {
                if l < 3 {
                    2.0
                } else {
                    0.0
                }
            }
            fn death_rate(&self, _p: usize, l: usize) -> f64 {
                if l > 0 {
                    4.0
                } else {
                    0.0
                }
            }
            fn for_each_phase_outgoing(&self, _p: usize, _v: &mut dyn FnMut(usize, f64)) {}
            fn for_each_phase_incoming(&self, _p: usize, _v: &mut dyn FnMut(usize, f64)) {}
        }
        let sol = solve_mbd(&OnePhase, None, &SolveOptions::default()).unwrap();
        // Geometric with ratio 1/2: [8,4,2,1]/15.
        let expect = [8.0 / 15.0, 4.0 / 15.0, 2.0 / 15.0, 1.0 / 15.0];
        for (i, &e) in expect.iter().enumerate() {
            assert!((sol.pi[i] - e).abs() < 1e-12, "level {i}");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mbd = TableMbd::random(3, 5, 1);
        let err = solve_mbd(&mbd, Some(&[1.0; 3]), &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, CtmcError::DimensionMismatch { .. }));
    }

    /// Exact phase marginal of a TableMbd: the phase process is
    /// autonomous, so solve its own small chain directly.
    pub(crate) fn exact_phase_marginal(mbd: &TableMbd) -> Vec<f64> {
        let mut b = TripletBuilder::new(mbd.phases);
        for p in 0..mbd.phases {
            for &(q, rate) in &mbd.phase_rates[p] {
                b.push(p, q, rate);
            }
        }
        solve_gth(&b.build().unwrap()).unwrap().into_inner()
    }

    #[test]
    fn projected_solver_matches_gth() {
        for seed in [2u64, 77, 4242] {
            let mbd = TableMbd::random(6, 10, seed);
            let marginal = exact_phase_marginal(&mbd);
            let sol = solve_mbd_projected(&mbd, &marginal, None, &SolveOptions::default()).unwrap();
            let exact = solve_gth(&mbd.to_sparse()).unwrap();
            for i in 0..mbd.phases * mbd.levels {
                assert!(
                    (exact[i] - sol.pi[i]).abs() < 1e-8,
                    "seed {seed} state {i}: {} vs {}",
                    exact[i],
                    sol.pi[i]
                );
            }
        }
    }

    #[test]
    fn projection_accelerates_stiff_chains() {
        let mbd = TableMbd::random(8, 30, 99);
        let marginal = exact_phase_marginal(&mbd);
        let plain = solve_mbd(&mbd, None, &SolveOptions::default()).unwrap();
        let projected =
            solve_mbd_projected(&mbd, &marginal, None, &SolveOptions::default()).unwrap();
        assert!(
            projected.sweeps <= plain.sweeps,
            "projected {} vs plain {}",
            projected.sweeps,
            plain.sweeps
        );
    }

    #[test]
    fn projected_rejects_bad_marginal() {
        let mbd = TableMbd::random(3, 5, 1);
        // Wrong length.
        assert!(matches!(
            solve_mbd_projected(&mbd, &[0.5, 0.5], None, &SolveOptions::default()),
            Err(CtmcError::DimensionMismatch { .. })
        ));
        // Not a probability vector.
        assert!(matches!(
            solve_mbd_projected(&mbd, &[0.5, 0.5, 0.5], None, &SolveOptions::default()),
            Err(CtmcError::InvalidGenerator { .. })
        ));
    }
}
