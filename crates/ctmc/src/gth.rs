//! Grassmann–Taksar–Heyman (GTH) direct steady-state solver.
//!
//! GTH is a Gaussian-elimination variant for Markov chains that never
//! subtracts, so it is backward stable regardless of how stiff the chain
//! is. It costs `O(n³)` time and `O(n²)` memory and is therefore the
//! reference solver for *small* chains — this crate uses it as the ground
//! truth against which the iterative solvers are validated.

// Indexed loops mirror the textbook linear-algebra formulations these
// kernels implement; iterator rewrites obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

use crate::dense::DenseMatrix;
use crate::error::CtmcError;
use crate::stationary::StationaryDistribution;
use crate::transitions::Transitions;

/// Practical size limit above which GTH becomes unreasonably slow; the
/// function does not enforce it, but callers (and tests) should.
pub const RECOMMENDED_MAX_STATES: usize = 2000;

/// Solves `πQ = 0`, `Σπ = 1` by GTH elimination.
///
/// The input is any [`Transitions`] implementation; the off-diagonal rates
/// are copied into a dense working matrix.
///
/// # Errors
///
/// * [`CtmcError::EmptyChain`] for a chain with zero states.
/// * [`CtmcError::InvalidGenerator`] if the chain is reducible in a way
///   that produces a zero pivot (a state, other than the last remaining
///   one, with no transitions to lower-numbered states after folding).
///
/// # Example
///
/// ```
/// use gprs_ctmc::{TripletBuilder, gth};
///
/// let mut b = TripletBuilder::new(2);
/// b.push(0, 1, 3.0);
/// b.push(1, 0, 1.0);
/// let pi = gth::solve_gth(&b.build()?)?;
/// assert!((pi[0] - 0.25).abs() < 1e-14);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
pub fn solve_gth<G: Transitions + ?Sized>(gen: &G) -> Result<StationaryDistribution, CtmcError> {
    let n = gen.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }
    if n == 1 {
        return Ok(StationaryDistribution::new(vec![1.0]));
    }

    // Copy off-diagonal rates into a dense working matrix.
    let mut a = DenseMatrix::zeros(n);
    for i in 0..n {
        gen.for_each_outgoing(i, &mut |j, rate| {
            a.add(i, j, rate);
        });
    }

    // Fold states n-1, n-2, ..., 1 into the remaining chain.
    for k in (1..n).rev() {
        let s: f64 = (0..k).map(|j| a.get(k, j)).sum();
        if s <= 0.0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!(
                    "zero pivot at state {k}: chain is reducible (state cannot \
                     reach lower-numbered states)"
                ),
            });
        }
        for i in 0..k {
            let v = a.get(i, k) / s;
            a.set(i, k, v);
        }
        for i in 0..k {
            let aik = a.get(i, k);
            if aik == 0.0 {
                continue;
            }
            for j in 0..k {
                if j != i {
                    let akj = a.get(k, j);
                    if akj != 0.0 {
                        a.add(i, j, aik * akj);
                    }
                }
            }
        }
    }

    // Back substitution: x_0 = 1, x_k = Σ_{i<k} x_i a[i][k].
    let mut x = vec![0.0f64; n];
    x[0] = 1.0;
    for k in 1..n {
        let mut acc = 0.0;
        for i in 0..k {
            acc += x[i] * a.get(i, k);
        }
        x[k] = acc;
    }

    let total: f64 = x.iter().sum();
    for v in &mut x {
        *v /= total;
    }
    Ok(StationaryDistribution::new(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;
    use crate::transitions::balance_residual;

    #[test]
    fn two_state_closed_form() {
        // on->off at rate a=1.5, off->on at rate b=0.5: pi_on = b/(a+b).
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.5);
        b.push(1, 0, 0.5);
        let pi = solve_gth(&b.build().unwrap()).unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-14);
        assert!((pi[1] - 0.75).abs() < 1e-14);
    }

    #[test]
    fn single_state() {
        let mut b = TripletBuilder::new(1);
        b.push(0, 0, 0.0); // dropped, zero rate
        let pi = solve_gth(&b.build().unwrap()).unwrap();
        assert_eq!(&*pi, &[1.0]);
    }

    #[test]
    fn birth_death_matches_product_form() {
        // M/M/1/K with lambda=2, mu=3, K=5: pi_k ∝ (2/3)^k.
        let (lam, mu, k) = (2.0f64, 3.0f64, 5usize);
        let mut b = TripletBuilder::new(k + 1);
        for i in 0..k {
            b.push(i, i + 1, lam);
            b.push(i + 1, i, mu);
        }
        let pi = solve_gth(&b.build().unwrap()).unwrap();
        let rho: f64 = lam / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for i in 0..=k {
            assert!(
                (pi[i] - rho.powi(i as i32) / norm).abs() < 1e-14,
                "state {i}"
            );
        }
    }

    #[test]
    fn stiff_chain_is_stable() {
        // Rates spanning 10 orders of magnitude.
        let mut b = TripletBuilder::new(3);
        b.push(0, 1, 1e-6);
        b.push(1, 0, 1e4);
        b.push(1, 2, 1e4);
        b.push(2, 1, 1e-6);
        let g = b.build().unwrap();
        let pi = solve_gth(&g).unwrap();
        assert!(balance_residual(&g, &pi) < 1e-12);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reducible_chain_errors() {
        // State 1 unreachable-from-below after folding: 0 -> 1 only.
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        let err = solve_gth(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidGenerator { .. }));
    }

    #[test]
    fn residual_is_tiny_on_random_chain() {
        // Deterministic pseudo-random dense-ish chain.
        let n = 40;
        let mut b = TripletBuilder::new(n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            for j in 0..n {
                if i != j && next() < 0.3 {
                    b.push(i, j, next() * 10.0 + 1e-3);
                }
            }
            // Guarantee irreducibility with a cycle backbone.
            b.push(i, (i + 1) % n, 1.0);
        }
        let g = b.build().unwrap();
        let pi = solve_gth(&g).unwrap();
        assert!(balance_residual(&g, &pi) < 1e-12);
    }
}
