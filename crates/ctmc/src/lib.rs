//! Continuous-time Markov chain (CTMC) toolkit.
//!
//! This crate provides the numerical substrate for the GPRS reproduction:
//! building finite-state CTMC generators, solving for their stationary
//! distribution, and computing reward-based performance measures.
//!
//! # Overview
//!
//! A CTMC on states `0..n` is described by its infinitesimal generator
//! `Q`, where `q_ij >= 0` for `i != j` is the transition rate from `i`
//! to `j` and `q_ii = -Σ_{j != i} q_ij`. The stationary distribution `π`
//! solves `π Q = 0` with `Σ π_i = 1`.
//!
//! Three solvers are provided:
//!
//! * [`gth::solve_gth`] — the Grassmann–Taksar–Heyman direct elimination.
//!   Numerically stable (no subtractions), `O(n³)`; the ground truth for
//!   small chains and for validating the iterative solvers.
//! * [`solver::solve_gauss_seidel`] — Gauss–Seidel / SOR iteration over
//!   *incoming* transitions. Works matrix-free through the
//!   [`IncomingTransitions`] trait, so chains with tens of millions of
//!   states never materialize a matrix.
//! * [`power::solve_power`] — uniformization-based power iteration over
//!   *outgoing* transitions. Simple and robust but slow on stiff chains;
//!   used for cross-checks.
//! * [`parallel`] — multithreaded solvers over assembled sparse
//!   generators: red-black (multicolor) SOR and damped Jacobi, with the
//!   balance residual fused into the sweeps. Thread counts honour
//!   `RAYON_NUM_THREADS`.
//!
//! Generators can be represented either as an assembled sparse matrix
//! ([`SparseGenerator`], built via [`TripletBuilder`]) or as a matrix-free
//! implementation of the [`Transitions`] / [`IncomingTransitions`] traits.
//!
//! # Repeated solves: the symbolic/numeric split
//!
//! Parameter sweeps and fixed-point iterations solve the *same-shaped*
//! chain many times with different rates. Two facilities keep that hot
//! path free of redundant symbolic work:
//!
//! * [`SparseGenerator::refill_values`] overwrites an assembled
//!   matrix's rates in place (same sparsity pattern, no sort, no
//!   allocation) instead of rebuilding CSR + transpose from triplets;
//! * [`SolveWorkspace`] carries the iterate and solver scratch across
//!   solves — the `_ws` solver variants
//!   ([`solver::solve_gauss_seidel_ws`], [`mbd::solve_mbd_projected_ws`])
//!   allocate nothing after their first same-shape call and leave the
//!   solution in the workspace as a natural rolling warm start.
//!
//! # Example
//!
//! Solve a two-state on/off chain and compare with the closed form:
//!
//! ```
//! use gprs_ctmc::{TripletBuilder, solver, SolveOptions};
//!
//! let mut b = TripletBuilder::new(2);
//! b.push(0, 1, 1.0); // on -> off
//! b.push(1, 0, 2.0); // off -> on
//! let gen = b.build()?;
//! let sol = solver::solve_gauss_seidel(&gen, None, &SolveOptions::default())?;
//! assert!((sol.pi[0] - 2.0 / 3.0).abs() < 1e-10);
//! assert!((sol.pi[1] - 1.0 / 3.0).abs() < 1e-10);
//! # Ok::<(), gprs_ctmc::CtmcError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocked;
pub mod dense;
pub mod error;
pub mod gth;
pub mod mbd;
pub mod parallel;
pub mod power;
pub mod solver;
pub mod sparse;
pub mod stationary;
pub mod transient;
pub mod transitions;

pub use blocked::{
    blocked_kernel_enabled, solve_mbd_projected_blocked_inplace_ws, solve_mbd_projected_blocked_ws,
    BlockedMbd,
};
pub use error::CtmcError;
pub use parallel::{solve_parallel, ParallelMethod, RedBlackSor};
pub use solver::{Solution, SolveOptions, SolveStats, SolveWorkspace};
pub use sparse::{SparseGenerator, TripletBuilder};
pub use stationary::StationaryDistribution;
pub use transitions::{balance_residual, try_balance_residual, IncomingTransitions, Transitions};
