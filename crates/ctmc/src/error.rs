//! Error type for CTMC construction and solving.

use std::fmt;

/// Errors produced while building or solving a CTMC.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The generator is structurally invalid (e.g. a negative rate, or a
    /// transition index out of bounds).
    InvalidGenerator {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A chain with zero states (or an otherwise empty problem) was given.
    EmptyChain,
    /// The iterative solver did not reach the requested tolerance.
    NotConverged {
        /// Number of sweeps/iterations performed.
        iterations: usize,
        /// Relative residual `‖πQ‖₁ / ‖π·exit‖₁` at the final iterate.
        residual: f64,
        /// The tolerance that was requested.
        tolerance: f64,
    },
    /// Dimension mismatch between supplied vectors and the chain.
    DimensionMismatch {
        /// The dimension the chain expects.
        expected: usize,
        /// The dimension that was supplied.
        actual: usize,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::InvalidGenerator { reason } => {
                write!(f, "invalid generator: {reason}")
            }
            CtmcError::EmptyChain => write!(f, "chain has no states"),
            CtmcError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations \
                 (residual {residual:.3e} > tolerance {tolerance:.3e})"
            ),
            CtmcError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CtmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            CtmcError::InvalidGenerator {
                reason: "negative rate".into(),
            },
            CtmcError::EmptyChain,
            CtmcError::NotConverged {
                iterations: 10,
                residual: 1e-3,
                tolerance: 1e-9,
            },
            CtmcError::DimensionMismatch {
                expected: 4,
                actual: 2,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtmcError>();
    }
}
