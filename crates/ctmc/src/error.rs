//! Error type for CTMC construction and solving.

use std::fmt;

/// Errors produced while building or solving a CTMC.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The generator is structurally invalid (e.g. a negative rate, or a
    /// transition index out of bounds).
    InvalidGenerator {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A chain with zero states (or an otherwise empty problem) was given.
    EmptyChain,
    /// The iterative solver did not reach the requested tolerance.
    NotConverged {
        /// Number of sweeps/iterations performed.
        iterations: usize,
        /// Relative residual `‖πQ‖₁ / ‖π·exit‖₁` at the final iterate.
        residual: f64,
        /// The tolerance that was requested.
        tolerance: f64,
    },
    /// Dimension mismatch between supplied vectors and the chain.
    DimensionMismatch {
        /// The dimension the chain expects.
        expected: usize,
        /// The dimension that was supplied.
        actual: usize,
    },
    /// The iterate blew up: non-finite values appeared, total mass
    /// vanished or overflowed, or the residual grew past the divergence
    /// guard (see `SolveOptions::divergence_factor`). Unlike
    /// [`NotConverged`](CtmcError::NotConverged) — which reports an
    /// iterate that is merely not *yet* good enough, with a finite
    /// residual — this means continuing the iteration is pointless: the
    /// caller should restart from a different guess or switch solvers.
    Diverged {
        /// Number of sweeps/iterations performed before the abort.
        iterations: usize,
        /// The residual that triggered the abort (may be NaN/∞).
        residual: f64,
    },
}

impl CtmcError {
    /// Whether this error describes a *solver* failure (the iteration
    /// did not produce a usable answer) rather than a structural defect
    /// of the problem. Solver failures are worth retrying on a
    /// different rung of a fallback ladder — a cold restart, another
    /// iterative method, or direct elimination; structural errors
    /// (invalid generator, dimension mismatch, empty chain) would fail
    /// identically on every rung.
    pub fn is_solver_failure(&self) -> bool {
        matches!(
            self,
            CtmcError::NotConverged { .. } | CtmcError::Diverged { .. }
        )
    }
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::InvalidGenerator { reason } => {
                write!(f, "invalid generator: {reason}")
            }
            CtmcError::EmptyChain => write!(f, "chain has no states"),
            CtmcError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations \
                 (residual {residual:.3e} > tolerance {tolerance:.3e})"
            ),
            CtmcError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            CtmcError::Diverged {
                iterations,
                residual,
            } => write!(
                f,
                "iteration diverged after {iterations} sweeps \
                 (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for CtmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            CtmcError::InvalidGenerator {
                reason: "negative rate".into(),
            },
            CtmcError::EmptyChain,
            CtmcError::NotConverged {
                iterations: 10,
                residual: 1e-3,
                tolerance: 1e-9,
            },
            CtmcError::DimensionMismatch {
                expected: 4,
                actual: 2,
            },
            CtmcError::Diverged {
                iterations: 5,
                residual: f64::NAN,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn solver_failures_are_retryable_structural_errors_are_not() {
        assert!(CtmcError::NotConverged {
            iterations: 1,
            residual: 1.0,
            tolerance: 1e-10,
        }
        .is_solver_failure());
        assert!(CtmcError::Diverged {
            iterations: 1,
            residual: f64::INFINITY,
        }
        .is_solver_failure());
        assert!(!CtmcError::EmptyChain.is_solver_failure());
        assert!(!CtmcError::InvalidGenerator { reason: "x".into() }.is_solver_failure());
        assert!(!CtmcError::DimensionMismatch {
            expected: 1,
            actual: 2,
        }
        .is_solver_failure());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtmcError>();
    }
}
