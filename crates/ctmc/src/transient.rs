//! Transient (time-dependent) solution via uniformization.
//!
//! Computes `π(t) = π(0)·exp(Qt)` as the Poisson-weighted sum
//! `Σ_k e^{-Λt}(Λt)^k/k! · π(0)Pᵏ` with `P = I + Q/Λ`. This is the
//! machinery the paper's future-work direction (adaptive performance
//! management, i.e. reacting to load changes) needs; it also provides an
//! independent check of the steady-state solvers (`π(t)` for large `t`
//! must approach `π`).

use crate::error::CtmcError;
use crate::transitions::Transitions;

/// Truncation tolerance for the Poisson tail: terms are accumulated until
/// the cumulative weight exceeds `1 - POISSON_TAIL_EPS`.
pub const POISSON_TAIL_EPS: f64 = 1e-12;

/// Computes the transient distribution `π(t)` from initial distribution
/// `pi0`.
///
/// # Errors
///
/// * [`CtmcError::EmptyChain`] — zero states.
/// * [`CtmcError::DimensionMismatch`] — `pi0` has wrong length.
/// * [`CtmcError::InvalidGenerator`] — `pi0` is not a probability vector,
///   or `t` is negative/non-finite.
///
/// # Example
///
/// ```
/// use gprs_ctmc::{TripletBuilder, transient};
///
/// // Two-state chain starting in state 0.
/// let mut b = TripletBuilder::new(2);
/// b.push(0, 1, 1.0);
/// b.push(1, 0, 1.0);
/// let gen = b.build()?;
/// let pi = transient::solve_transient(&gen, &[1.0, 0.0], 1000.0)?;
/// assert!((pi[0] - 0.5).abs() < 1e-9); // long horizon ≈ steady state
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
pub fn solve_transient<G: Transitions + ?Sized>(
    gen: &G,
    pi0: &[f64],
    t: f64,
) -> Result<Vec<f64>, CtmcError> {
    let n = gen.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }
    if pi0.len() != n {
        return Err(CtmcError::DimensionMismatch {
            expected: n,
            actual: pi0.len(),
        });
    }
    if !t.is_finite() || t < 0.0 {
        return Err(CtmcError::InvalidGenerator {
            reason: format!("time horizon must be finite and >= 0, got {t}"),
        });
    }
    let total: f64 = pi0.iter().sum();
    if pi0.iter().any(|&x| !x.is_finite() || x < 0.0) || (total - 1.0).abs() > 1e-9 {
        return Err(CtmcError::InvalidGenerator {
            reason: "initial distribution must be a probability vector".into(),
        });
    }

    let mut exit = vec![0.0f64; n];
    let mut max_exit = 0.0f64;
    for (s, e) in exit.iter_mut().enumerate() {
        *e = gen.exit_rate(s);
        max_exit = max_exit.max(*e);
    }
    if max_exit == 0.0 || t == 0.0 {
        return Ok(pi0.to_vec());
    }
    let lambda = max_exit * crate::power::UNIFORMIZATION_HEADROOM;
    let q = lambda * t;

    // Poisson(q) weights computed iteratively; for large q start from the
    // mode to avoid underflow of e^{-q}.
    let mut result = vec![0.0f64; n];
    let mut v = pi0.to_vec(); // π(0)·P^k, updated in place
    let mut next = vec![0.0f64; n];

    // weight_k and running normalization in log space for robustness.
    let mut log_w = -q; // ln of Poisson(0) weight
    let mut cumulative = 0.0f64;
    let mut k = 0usize;
    // Generous cap: mean q plus ~12 standard deviations.
    let k_max = (q + 12.0 * q.sqrt() + 30.0).ceil() as usize;

    loop {
        let w = log_w.exp();
        if w > 0.0 {
            for (r, &x) in result.iter_mut().zip(&v) {
                *r += w * x;
            }
            cumulative += w;
        }
        if cumulative >= 1.0 - POISSON_TAIL_EPS || k >= k_max {
            break;
        }
        // v ← v·P
        next.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..n {
            let p = v[i];
            if p == 0.0 {
                continue;
            }
            gen.for_each_outgoing(i, &mut |j, rate| {
                next[j] += p * rate / lambda;
            });
            next[i] += p * (1.0 - exit[i] / lambda);
        }
        std::mem::swap(&mut v, &mut next);
        k += 1;
        log_w += q.ln() - (k as f64).ln();
    }

    // Account for the truncated tail by renormalizing.
    let mass: f64 = result.iter().sum();
    if mass > 0.0 {
        for r in &mut result {
            *r /= mass;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// Closed form for a two-state chain: p_00(t) = b/(a+b) + a/(a+b)·e^{-(a+b)t}
    /// with 0 -> 1 at rate a, 1 -> 0 at rate b, started in state 0.
    fn two_state_closed_form(a: f64, b: f64, t: f64) -> f64 {
        b / (a + b) + a / (a + b) * (-(a + b) * t).exp()
    }

    #[test]
    fn matches_two_state_closed_form() {
        let (a, b) = (0.7, 0.3);
        let mut bld = TripletBuilder::new(2);
        bld.push(0, 1, a);
        bld.push(1, 0, b);
        let g = bld.build().unwrap();
        for &t in &[0.0, 0.1, 0.5, 1.0, 3.0, 10.0] {
            let pi = solve_transient(&g, &[1.0, 0.0], t).unwrap();
            let expect = two_state_closed_form(a, b, t);
            assert!(
                (pi[0] - expect).abs() < 1e-9,
                "t={t}: {} vs {expect}",
                pi[0]
            );
        }
    }

    #[test]
    fn long_horizon_reaches_steady_state() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 1, 1.0);
        b.push(1, 2, 0.5);
        b.push(2, 0, 0.25);
        let g = b.build().unwrap();
        let exact = crate::gth::solve_gth(&g).unwrap();
        let pi = solve_transient(&g, &[1.0, 0.0, 0.0], 500.0).unwrap();
        for s in 0..3 {
            assert!((pi[s] - exact[s]).abs() < 1e-8, "state {s}");
        }
    }

    #[test]
    fn zero_time_returns_initial() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 5.0);
        b.push(1, 0, 5.0);
        let g = b.build().unwrap();
        let pi = solve_transient(&g, &[0.2, 0.8], 0.0).unwrap();
        assert_eq!(pi, vec![0.2, 0.8]);
    }

    #[test]
    fn large_q_does_not_underflow() {
        // Λt ≈ 1e4: e^{-q} underflows a naive implementation's first term;
        // result must still be a valid distribution near steady state.
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 10.0);
        b.push(1, 0, 30.0);
        let g = b.build().unwrap();
        let pi = solve_transient(&g, &[1.0, 0.0], 300.0).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((pi[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn invalid_initial_distribution_rejected() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let g = b.build().unwrap();
        assert!(solve_transient(&g, &[0.4, 0.4], 1.0).is_err());
        assert!(solve_transient(&g, &[1.0], 1.0).is_err());
        assert!(solve_transient(&g, &[1.0, 0.0], -1.0).is_err());
    }
}
