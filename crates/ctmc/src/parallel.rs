//! Parallel stationary solvers and the workspace's thread-fan-out
//! helpers.
//!
//! Two solvers complement the sequential [`crate::solver`] /
//! [`crate::mbd`] paths, both operating on an assembled
//! [`SparseGenerator`] (CSR plus transpose):
//!
//! * [`RedBlackSor`] — multicolor ("red-black") successive
//!   over-relaxation. States are greedily colored so that no two states
//!   connected by a transition share a color; the sweep then updates one
//!   color class at a time, and *within* a class every state update is
//!   independent and runs across threads. For a bipartite chain
//!   (e.g. a pure birth–death ladder) the coloring is exactly the
//!   classic two-color red-black ordering; the GPRS chain needs a
//!   handful of colors. Per-class updates read only other classes, so a
//!   full pass is a genuine Gauss–Seidel sweep (fresh values), not
//!   Jacobi.
//! * [`solve_jacobi`] — damped parallel Jacobi. Every state update in a
//!   sweep reads the previous iterate, so the whole sweep parallelizes
//!   with no coloring at all. Needs damping (`omega < 1`) to handle
//!   periodic jump chains and converges slower per sweep than SOR, but
//!   it works on *any* chain, including ones whose conflict graph needs
//!   more colors than [`RedBlackSor`] supports.
//!
//! [`solve_parallel`] picks between them: red-black SOR when the greedy
//! coloring succeeds with at most [`MAX_COLORS`] colors (always, in
//! practice, for the paper's models), damped Jacobi otherwise.
//!
//! Both solvers *fuse* the balance-residual accumulation into the sweep
//! itself: the terms `|inflow_j − π_j·exit_j|` and `π_j·exit_j` are
//! accumulated while each state is updated, so convergence is observed
//! every sweep without the separate `O(nnz)` residual pass the
//! sequential solver historically paid on check sweeps. When the fused
//! estimate drops below tolerance, one exact residual evaluation on the
//! frozen iterate confirms convergence (so the reported
//! [`Solution::residual`] is always the true balance residual).
//!
//! # Thread control
//!
//! Worker counts default to [`gprs_exec::num_threads`], which honours
//! the `RAYON_NUM_THREADS` environment variable (the convention the
//! rest of the Rust ecosystem uses) and falls back to the machine's
//! available parallelism. The executors run inline when one thread is
//! requested or the work is trivially small, so everything in this
//! module is safe to call unconditionally.
//!
//! The thread fan-out helpers that used to live here (`par_map_tasks`,
//! `num_threads`, ...) live in the dependency-free [`gprs_exec`]
//! crate, which the whole workspace — model sweeps, cluster fixed
//! points, simulator replications — shares; import them from
//! `gprs_exec` directly.

use crate::error::CtmcError;
use crate::solver::{HealthGuard, Solution, SolveOptions};
use crate::sparse::SparseGenerator;
use crate::stationary::StationaryDistribution;
use gprs_exec::{chunk_ranges, num_threads, par_map_chunks_mut, par_map_ranges, MIN_PARALLEL_WORK};

/// Maximum number of color classes [`RedBlackSor`] accepts before
/// [`solve_parallel`] falls back to damped Jacobi.
pub const MAX_COLORS: usize = 64;

// ---------------------------------------------------------------------------
// Shared solver plumbing
// ---------------------------------------------------------------------------

fn validated_start(n: usize, warm_start: Option<&[f64]>) -> Result<Vec<f64>, CtmcError> {
    match warm_start {
        Some(w) => {
            if w.len() != n {
                return Err(CtmcError::DimensionMismatch {
                    expected: n,
                    actual: w.len(),
                });
            }
            let total: f64 = w.iter().sum();
            if !total.is_finite() || total <= 0.0 || w.iter().any(|&x| !x.is_finite() || x < 0.0) {
                return Err(CtmcError::InvalidGenerator {
                    reason: "warm start must be non-negative with positive mass".into(),
                });
            }
            Ok(w.iter().map(|&x| x / total).collect())
        }
        None => Ok(vec![1.0 / n as f64; n]),
    }
}

fn checked_exit_rates(gen: &SparseGenerator) -> Result<&[f64], CtmcError> {
    let exit = gen.exit_rates();
    for (s, &e) in exit.iter().enumerate() {
        if e <= 0.0 {
            return Err(CtmcError::InvalidGenerator {
                reason: format!("state {s} has zero exit rate (absorbing)"),
            });
        }
    }
    Ok(exit)
}

/// Exact relative L1 balance residual of `pi`, evaluated in parallel
/// over the transpose rows of `gen`.
///
/// # Panics
///
/// Panics if `pi.len() != gen.num_states()`.
pub fn balance_residual_par(gen: &SparseGenerator, pi: &[f64], threads: usize) -> f64 {
    assert_eq!(
        pi.len(),
        gen.num_states(),
        "pi length must match state count"
    );
    let exit = gen.exit_rates();
    // Flat transpose-CSR scan: same edge order as `gen.column(j)`, so
    // the accumulation is bit-identical, without a slice call per state.
    let (tptr, tcol, tval) = gen.transpose_csr();
    let parts = par_map_ranges(pi.len(), threads, |range| {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for j in range {
            let mut inflow = 0.0f64;
            for e in tptr[j]..tptr[j + 1] {
                inflow += pi[tcol[e] as usize] * tval[e];
            }
            num += (inflow - pi[j] * exit[j]).abs();
            den += pi[j] * exit[j];
        }
        (num, den)
    });
    let (num, den) = parts
        .into_iter()
        .fold((0.0, 0.0), |(a, b), (n, d)| (a + n, b + d));
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

fn par_sum(pi: &[f64], threads: usize) -> f64 {
    par_map_ranges(pi.len(), threads, |range| pi[range].iter().sum::<f64>())
        .into_iter()
        .sum()
}

fn par_scale(pi: &mut [f64], inv: f64, threads: usize) {
    par_map_chunks_mut(pi, threads, |_, chunk| {
        for x in chunk {
            *x *= inv;
        }
    });
}

// ---------------------------------------------------------------------------
// Red-black (multicolor) SOR
// ---------------------------------------------------------------------------

/// A chain prepared for parallel multicolor SOR sweeps.
///
/// Construction colors the states, permutes them so each color class is
/// contiguous, and materializes the permuted incoming lists; the
/// preparation is reusable across solves (e.g. warm-started re-solves of
/// the same chain at different options).
///
/// # Example
///
/// ```
/// use gprs_ctmc::parallel::RedBlackSor;
/// use gprs_ctmc::{SolveOptions, TripletBuilder};
///
/// let mut b = TripletBuilder::new(3);
/// for i in 0..3 {
///     b.push(i, (i + 1) % 3, 1.0 + i as f64);
/// }
/// let gen = b.build()?;
/// let sor = RedBlackSor::new(&gen)?;
/// let sol = sor.solve(None, &SolveOptions::default())?;
/// assert!(sol.residual <= 1e-10);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RedBlackSor {
    n: usize,
    /// `perm[new] = old` state index.
    perm: Vec<u32>,
    /// Class `c` occupies permuted indices `class_bounds[c]..class_bounds[c + 1]`.
    class_bounds: Vec<usize>,
    /// Permuted incoming CSR: sources of permuted state `j` are
    /// `in_src[in_ptr[j]..in_ptr[j + 1]]` (permuted numbering).
    in_ptr: Vec<usize>,
    in_src: Vec<u32>,
    in_val: Vec<f64>,
    /// Exit rates in permuted numbering.
    exit: Vec<f64>,
    threads: usize,
}

impl RedBlackSor {
    /// Prepares the chain: greedy multicolor ordering plus permuted
    /// incoming lists. Uses [`num_threads`] workers for solves.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::EmptyChain`] for zero states.
    /// * [`CtmcError::InvalidGenerator`] if a state is absorbing or the
    ///   conflict graph needs more than [`MAX_COLORS`] colors (fall back
    ///   to [`solve_jacobi`], as [`solve_parallel`] does automatically).
    pub fn new(gen: &SparseGenerator) -> Result<Self, CtmcError> {
        let n = gen.num_states();
        if n == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let exit_old = checked_exit_rates(gen)?;

        // Greedy coloring over the conflict graph (an edge in either
        // direction makes two states conflict). Scanning states in index
        // order guarantees no edge inside a class: when `i` is colored,
        // every already-colored neighbour is visible through `i`'s own
        // row and column.
        let mut color = vec![u32::MAX; n];
        let mut n_colors = 0usize;
        for i in 0..n {
            let mut used: u64 = 0;
            let (out, _) = gen.row(i);
            for &j in out {
                let c = color[j as usize];
                if c != u32::MAX && (c as usize) < MAX_COLORS {
                    used |= 1 << c;
                }
            }
            let (inc, _) = gen.column(i);
            for &j in inc {
                let c = color[j as usize];
                if c != u32::MAX && (c as usize) < MAX_COLORS {
                    used |= 1 << c;
                }
            }
            let c = (!used).trailing_zeros() as usize;
            if c >= MAX_COLORS {
                return Err(CtmcError::InvalidGenerator {
                    reason: format!(
                        "state {i} needs more than {MAX_COLORS} colors; \
                         use the Jacobi solver for this chain"
                    ),
                });
            }
            color[i] = c as u32;
            n_colors = n_colors.max(c + 1);
        }

        // Permutation grouping states by color, stable in state order.
        let mut counts = vec![0usize; n_colors];
        for &c in &color {
            counts[c as usize] += 1;
        }
        let mut class_bounds = vec![0usize; n_colors + 1];
        for c in 0..n_colors {
            class_bounds[c + 1] = class_bounds[c] + counts[c];
        }
        let mut cursor = class_bounds[..n_colors].to_vec();
        let mut perm = vec![0u32; n];
        let mut inv = vec![0u32; n];
        for (old, &c) in color.iter().enumerate() {
            let new = cursor[c as usize];
            cursor[c as usize] += 1;
            perm[new] = old as u32;
            inv[old] = new as u32;
        }

        let threads = num_threads();

        // Permuted incoming CSR and exit rates.
        let mut in_ptr = vec![0usize; n + 1];
        for new in 0..n {
            in_ptr[new + 1] = in_ptr[new] + gen.column(perm[new] as usize).0.len();
        }
        let nnz = in_ptr[n];
        let mut in_src = vec![0u32; nnz];
        let mut in_val = vec![0.0f64; nnz];
        let mut exit = vec![0.0f64; n];
        {
            // Fill per-state segments in parallel: each worker owns a
            // contiguous range of permuted states, hence a contiguous
            // span of `in_src` / `in_val`.
            let ranges = chunk_ranges(n, if nnz < MIN_PARALLEL_WORK { 1 } else { threads });
            let mut src_rest: &mut [u32] = &mut in_src;
            let mut val_rest: &mut [f64] = &mut in_val;
            let mut exit_rest: &mut [f64] = &mut exit;
            std::thread::scope(|s| {
                for r in ranges {
                    let seg = in_ptr[r.end] - in_ptr[r.start];
                    let (src_seg, sr) = src_rest.split_at_mut(seg);
                    let (val_seg, vr) = val_rest.split_at_mut(seg);
                    let (exit_seg, er) = exit_rest.split_at_mut(r.len());
                    src_rest = sr;
                    val_rest = vr;
                    exit_rest = er;
                    let (in_ptr, perm, inv) = (&in_ptr, &perm, &inv);
                    let base = in_ptr[r.start];
                    s.spawn(move || {
                        for new in r.clone() {
                            let old = perm[new] as usize;
                            exit_seg[new - r.start] = exit_old[old];
                            let (src, val) = gen.column(old);
                            let lo = in_ptr[new] - base;
                            for (k, (&i, &v)) in src.iter().zip(val).enumerate() {
                                src_seg[lo + k] = inv[i as usize];
                                val_seg[lo + k] = v;
                            }
                        }
                    });
                }
            });
        }

        Ok(RedBlackSor {
            n,
            perm,
            class_bounds,
            in_ptr,
            in_src,
            in_val,
            exit,
            threads,
        })
    }

    /// Overrides the worker count (default: [`num_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of color classes the greedy coloring produced (2 for a
    /// bipartite chain — the classic red-black split).
    pub fn num_colors(&self) -> usize {
        self.class_bounds.len() - 1
    }

    /// Solves `πQ = 0` by parallel multicolor SOR with fused residual
    /// accumulation. Accepts and returns vectors in the *original*
    /// state numbering.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::solver::solve_gauss_seidel`]:
    /// [`CtmcError::DimensionMismatch`] for a bad warm start,
    /// [`CtmcError::NotConverged`] when `max_sweeps` is exhausted.
    pub fn solve(
        &self,
        warm_start: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> Result<Solution, CtmcError> {
        let n = self.n;
        let start = validated_start(n, warm_start)?;
        // Permute the start into class order.
        let mut pi = vec![0.0f64; n];
        par_map_chunks_mut(&mut pi, self.threads, |off, chunk| {
            for (t, p) in chunk.iter_mut().enumerate() {
                *p = start[self.perm[off + t] as usize];
            }
        });

        let omega = opts.sor_omega;
        let mut guard = HealthGuard::new(opts);
        let mut sweeps = 0usize;

        while sweeps < opts.max_sweeps {
            // One multicolor sweep, accumulating the fused residual of
            // the pre-update values as we go.
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for c in 0..self.num_colors() {
                let lo = self.class_bounds[c];
                let hi = self.class_bounds[c + 1];
                let (left, rest) = pi.split_at_mut(lo);
                let (mid, right) = rest.split_at_mut(hi - lo);
                let parts = par_map_chunks_mut(mid, self.threads, |off, chunk| {
                    let mut num = 0.0f64;
                    let mut den = 0.0f64;
                    for (t, p) in chunk.iter_mut().enumerate() {
                        let j = lo + off + t;
                        let mut inflow = 0.0f64;
                        for (&i, &v) in self.in_src[self.in_ptr[j]..self.in_ptr[j + 1]]
                            .iter()
                            .zip(&self.in_val[self.in_ptr[j]..self.in_ptr[j + 1]])
                        {
                            let i = i as usize;
                            // A proper coloring has no sources inside
                            // the class being updated.
                            debug_assert!(i < lo || i >= hi);
                            inflow += if i < lo { left[i] } else { right[i - hi] } * v;
                        }
                        let old = *p;
                        let e = self.exit[j];
                        num += (inflow - old * e).abs();
                        den += old * e;
                        let new = inflow / e;
                        *p = if omega == 1.0 {
                            new
                        } else {
                            ((1.0 - omega) * old + omega * new).max(0.0)
                        };
                    }
                    (num, den)
                });
                for (pn, pd) in parts {
                    num += pn;
                    den += pd;
                }
            }

            let total = par_sum(&pi, self.threads);
            if !total.is_finite() || total <= 0.0 {
                return Err(CtmcError::Diverged {
                    iterations: sweeps + 1,
                    residual: if den == 0.0 { f64::NAN } else { num / den },
                });
            }
            par_scale(&mut pi, 1.0 / total, self.threads);
            sweeps += 1;

            // The fused estimate costs nothing, so convergence is
            // observed every sweep; an exact evaluation on the frozen
            // iterate confirms it before returning.
            let residual = if den == 0.0 { 0.0 } else { num / den };
            guard.observe(sweeps, residual)?;
            if residual <= opts.tolerance {
                let exact = self.residual_exact(&pi);
                if exact <= opts.tolerance {
                    return Ok(Solution {
                        pi: StationaryDistribution::new(self.unpermute(&pi)),
                        sweeps,
                        residual: exact,
                    });
                }
            }
            if sweeps.is_multiple_of(opts.check_cadence()) && guard.out_of_time() {
                break;
            }
        }

        // Budget exhausted: report the exact residual of the frozen
        // iterate, never the fused mid-sweep estimate.
        let exact = self.residual_exact(&pi);
        Err(HealthGuard::budget_error(sweeps, exact, opts.tolerance))
    }

    /// Exact balance residual of a permuted iterate.
    fn residual_exact(&self, pi: &[f64]) -> f64 {
        let parts = par_map_ranges(self.n, self.threads, |range| {
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for j in range {
                let mut inflow = 0.0f64;
                for (&i, &v) in self.in_src[self.in_ptr[j]..self.in_ptr[j + 1]]
                    .iter()
                    .zip(&self.in_val[self.in_ptr[j]..self.in_ptr[j + 1]])
                {
                    inflow += pi[i as usize] * v;
                }
                num += (inflow - pi[j] * self.exit[j]).abs();
                den += pi[j] * self.exit[j];
            }
            (num, den)
        });
        let (num, den) = parts
            .into_iter()
            .fold((0.0, 0.0), |(a, b), (n, d)| (a + n, b + d));
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    fn unpermute(&self, pi: &[f64]) -> Vec<f64> {
        let mut result = vec![0.0f64; self.n];
        // Scatter sequentially; a gather formulation would need the
        // inverse permutation kept around for a cold O(n) pass.
        for (new, &p) in pi.iter().enumerate() {
            result[self.perm[new] as usize] = p;
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Damped parallel Jacobi
// ---------------------------------------------------------------------------

/// Solves `πQ = 0` by damped parallel Jacobi iteration with
/// [`num_threads`] workers.
///
/// Each sweep computes every state's update from the previous iterate
/// (fully parallel, no coloring) and blends it with damping
/// `min(opts.sor_omega, 0.95)`; damping below 1 is required for chains
/// whose embedded jump chain is periodic (e.g. pure cycles), where
/// undamped Jacobi oscillates forever. The balance residual of the
/// pre-sweep iterate falls out of the update for free, so convergence is
/// checked every sweep and the reported residual is exact.
///
/// # Errors
///
/// As [`crate::solver::solve_gauss_seidel`].
///
/// # Example
///
/// ```
/// use gprs_ctmc::parallel::solve_jacobi;
/// use gprs_ctmc::{SolveOptions, TripletBuilder};
///
/// let mut b = TripletBuilder::new(2);
/// b.push(0, 1, 1.0);
/// b.push(1, 0, 2.0);
/// let sol = solve_jacobi(&b.build()?, None, &SolveOptions::default())?;
/// assert!((sol.pi[0] - 2.0 / 3.0).abs() < 1e-9);
/// # Ok::<(), gprs_ctmc::CtmcError>(())
/// ```
pub fn solve_jacobi(
    gen: &SparseGenerator,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<Solution, CtmcError> {
    let n = gen.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }
    let exit = checked_exit_rates(gen)?;
    let mut pi = validated_start(n, warm_start)?;
    let mut next = vec![0.0f64; n];
    let threads = num_threads();
    let damping = opts.sor_omega.min(0.95);
    // Each worker walks a contiguous span of the transpose arrays —
    // same edge order as `gen.column(j)`, bit-identical accumulation,
    // no per-state slice calls.
    let (tptr, tcol, tval) = gen.transpose_csr();

    let mut guard = HealthGuard::new(opts);
    let mut sweeps = 0usize;

    while sweeps < opts.max_sweeps {
        let parts = {
            let pi = &pi;
            par_map_chunks_mut(&mut next, threads, |off, chunk| {
                let mut num = 0.0f64;
                let mut den = 0.0f64;
                let mut sum = 0.0f64;
                for (t, out) in chunk.iter_mut().enumerate() {
                    let j = off + t;
                    let mut inflow = 0.0f64;
                    for e in tptr[j]..tptr[j + 1] {
                        inflow += pi[tcol[e] as usize] * tval[e];
                    }
                    let old = pi[j];
                    num += (inflow - old * exit[j]).abs();
                    den += old * exit[j];
                    let new = (1.0 - damping) * old + damping * inflow / exit[j];
                    sum += new;
                    *out = new;
                }
                (num, den, sum)
            })
        };
        let (num, den, total) = parts
            .into_iter()
            .fold((0.0, 0.0, 0.0), |(a, b, c), (x, y, z)| {
                (a + x, b + y, c + z)
            });
        if !total.is_finite() || total <= 0.0 {
            return Err(CtmcError::Diverged {
                iterations: sweeps + 1,
                residual: if den == 0.0 { f64::NAN } else { num / den },
            });
        }
        par_scale(&mut next, 1.0 / total, threads);
        std::mem::swap(&mut pi, &mut next);
        sweeps += 1;

        // The fused terms are the exact balance residual of the
        // *previous* iterate (Jacobi reads a consistent snapshot), so no
        // confirmation pass is needed.
        let residual = if den == 0.0 { 0.0 } else { num / den };
        guard.observe(sweeps, residual)?;
        if residual <= opts.tolerance {
            return Ok(Solution {
                pi: StationaryDistribution::new(next),
                sweeps: sweeps - 1,
                residual,
            });
        }
        if sweeps.is_multiple_of(opts.check_cadence()) && guard.out_of_time() {
            break;
        }
    }

    // Budget exhausted: evaluate the exact residual of the current
    // iterate so `NotConverged` carries a trustworthy, finite number.
    let exact = balance_residual_par(gen, &pi, threads);
    Err(HealthGuard::budget_error(sweeps, exact, opts.tolerance))
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Which parallel solver [`solve_parallel_with`] should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMethod {
    /// Red-black SOR when the coloring succeeds, Jacobi otherwise.
    #[default]
    Auto,
    /// Force multicolor SOR (errors if the chain needs too many colors).
    RedBlackSor,
    /// Force damped Jacobi.
    Jacobi,
}

/// Solves `πQ = 0` in parallel, picking red-black SOR when the chain
/// colors within [`MAX_COLORS`] classes and damped Jacobi otherwise.
///
/// # Errors
///
/// As [`crate::solver::solve_gauss_seidel`].
pub fn solve_parallel(
    gen: &SparseGenerator,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
) -> Result<Solution, CtmcError> {
    solve_parallel_with(gen, warm_start, opts, ParallelMethod::Auto)
}

/// [`solve_parallel`] with an explicit method choice.
///
/// # Errors
///
/// As [`crate::solver::solve_gauss_seidel`]; additionally
/// [`CtmcError::InvalidGenerator`] when `ParallelMethod::RedBlackSor` is
/// forced on a chain needing more than [`MAX_COLORS`] colors.
pub fn solve_parallel_with(
    gen: &SparseGenerator,
    warm_start: Option<&[f64]>,
    opts: &SolveOptions,
    method: ParallelMethod,
) -> Result<Solution, CtmcError> {
    match method {
        ParallelMethod::RedBlackSor => RedBlackSor::new(gen)?.solve(warm_start, opts),
        ParallelMethod::Jacobi => solve_jacobi(gen, warm_start, opts),
        ParallelMethod::Auto => match RedBlackSor::new(gen) {
            Ok(sor) => sor.solve(warm_start, opts),
            Err(CtmcError::InvalidGenerator { reason }) if reason.contains("colors") => {
                solve_jacobi(gen, warm_start, opts)
            }
            Err(e) => Err(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gth::solve_gth;
    use crate::solver::solve_gauss_seidel;
    use crate::sparse::TripletBuilder;

    fn random_irreducible(n: usize, seed: u64) -> SparseGenerator {
        let mut b = TripletBuilder::new(n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            b.push(i, (i + 1) % n, 0.5 + next());
            for j in 0..n {
                if j != i && next() < 0.15 {
                    b.push(i, j, next() * 5.0 + 1e-4);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn red_black_matches_gth() {
        for seed in [1u64, 42, 1234] {
            let g = random_irreducible(40, seed);
            let exact = solve_gth(&g).unwrap();
            let sor = RedBlackSor::new(&g).unwrap().with_threads(3);
            let sol = sor.solve(None, &SolveOptions::default()).unwrap();
            for s in 0..40 {
                assert!(
                    (exact[s] - sol.pi[s]).abs() < 1e-8,
                    "seed {seed} state {s}: {} vs {}",
                    exact[s],
                    sol.pi[s]
                );
            }
            assert!(sol.residual <= 1e-10);
        }
    }

    #[test]
    fn jacobi_matches_gth_including_periodic_cycle() {
        // A pure cycle has a periodic jump chain: undamped Jacobi would
        // oscillate forever, the damping must cope.
        let mut b = TripletBuilder::new(4);
        for i in 0..4 {
            b.push(i, (i + 1) % 4, 1.0 + i as f64);
        }
        let g = b.build().unwrap();
        let exact = solve_gth(&g).unwrap();
        let opts = SolveOptions::default().with_max_sweeps(200_000);
        let sol = solve_jacobi(&g, None, &opts).unwrap();
        for s in 0..4 {
            assert!((exact[s] - sol.pi[s]).abs() < 1e-8);
        }

        for seed in [7u64, 99] {
            let g = random_irreducible(30, seed);
            let exact = solve_gth(&g).unwrap();
            let sol = solve_jacobi(&g, None, &opts).unwrap();
            for s in 0..30 {
                assert!((exact[s] - sol.pi[s]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn parallel_agrees_with_sequential_gauss_seidel() {
        let g = random_irreducible(60, 5);
        let seq = solve_gauss_seidel(&g, None, &SolveOptions::default()).unwrap();
        let par = solve_parallel(&g, None, &SolveOptions::default()).unwrap();
        for s in 0..60 {
            assert!((seq.pi[s] - par.pi[s]).abs() < 1e-8, "state {s}");
        }
    }

    #[test]
    fn warm_start_accelerates_red_black() {
        let g = random_irreducible(80, 11);
        let sor = RedBlackSor::new(&g).unwrap();
        let cold = sor.solve(None, &SolveOptions::default()).unwrap();
        let warm = sor
            .solve(Some(cold.pi.as_slice()), &SolveOptions::default())
            .unwrap();
        assert!(warm.sweeps <= cold.sweeps);
        assert!(warm.sweeps <= 2, "restart took {} sweeps", warm.sweeps);
    }

    #[test]
    fn coloring_is_proper_and_small() {
        let g = random_irreducible(50, 3);
        let sor = RedBlackSor::new(&g).unwrap();
        assert!(sor.num_colors() >= 2);
        assert!(sor.num_colors() <= MAX_COLORS);
        // Rebuild old->color from the permutation and check every edge.
        let mut color = vec![usize::MAX; 50];
        for (new, &old) in sor.perm.iter().enumerate() {
            let c = sor
                .class_bounds
                .windows(2)
                .position(|w| (w[0]..w[1]).contains(&new))
                .unwrap();
            color[old as usize] = c;
        }
        for i in 0..50 {
            let (cols, _) = g.row(i);
            for &j in cols {
                assert_ne!(color[i], color[j as usize], "edge {i} -> {j}");
            }
        }
    }

    #[test]
    fn bipartite_chain_gets_two_colors() {
        // A birth-death ladder is bipartite: even/odd is a proper
        // 2-coloring, which is what greedy finds.
        let mut b = TripletBuilder::new(10);
        for i in 0..9 {
            b.push(i, i + 1, 1.0);
            b.push(i + 1, i, 2.0);
        }
        let sor = RedBlackSor::new(&b.build().unwrap()).unwrap();
        assert_eq!(sor.num_colors(), 2);
    }

    #[test]
    fn absorbing_state_rejected() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        let g = b.build().unwrap();
        assert!(matches!(
            RedBlackSor::new(&g),
            Err(CtmcError::InvalidGenerator { .. })
        ));
        assert!(matches!(
            solve_jacobi(&g, None, &SolveOptions::default()),
            Err(CtmcError::InvalidGenerator { .. })
        ));
    }

    #[test]
    fn warm_start_dimension_mismatch() {
        let g = random_irreducible(5, 13);
        let err = solve_parallel(&g, Some(&[1.0; 4]), &SolveOptions::default()).unwrap_err();
        assert_eq!(
            err,
            CtmcError::DimensionMismatch {
                expected: 5,
                actual: 4
            }
        );
    }

    #[test]
    fn residual_par_matches_sequential() {
        let g = random_irreducible(40, 21);
        let pi = solve_gth(&g).unwrap();
        let seq = crate::transitions::balance_residual(&g, pi.as_slice());
        let par = balance_residual_par(&g, pi.as_slice(), 4);
        assert!((seq - par).abs() < 1e-12);
    }

    #[test]
    fn thread_count_does_not_change_convergence() {
        let g = random_irreducible(70, 17);
        let base = RedBlackSor::new(&g)
            .unwrap()
            .with_threads(1)
            .solve(None, &SolveOptions::default())
            .unwrap();
        for threads in [2, 4] {
            let sol = RedBlackSor::new(&g)
                .unwrap()
                .with_threads(threads)
                .solve(None, &SolveOptions::default())
                .unwrap();
            for s in 0..70 {
                assert!(
                    (base.pi[s] - sol.pi[s]).abs() < 1e-9,
                    "threads {threads} state {s}"
                );
            }
        }
    }
}
