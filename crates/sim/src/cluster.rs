//! The default seven-cell hexagonal cluster and its handover topology.
//!
//! The topology is **shared with the analytical side**: it lives in
//! [`gprs_core::cluster`] and is re-exported here so the simulator and
//! the heterogeneous fixed-point model ([`gprs_core::cluster::ClusterModel`])
//! provably move users over the same graph. Cell 0 is the *mid cell*
//! (where statistics are collected, as in the paper); cells 1–6 form the
//! surrounding ring, and the cluster is closed under handover —
//! movements that would leave it wrap back onto it under the standard
//! 7-cell tiling of the plane.
//!
//! From the mid cell a handover target is uniform over the ring; from a
//! ring cell it is uniform over the mid cell and the other five ring
//! cells — exactly the uniform 1/6 flux split the analytical cluster
//! model assumes.
//!
//! Arbitrary topologies (hex tori, corridors, weighted adjacency)
//! enter the simulator through [`gprs_core::CellGraph`] via
//! [`SimConfig::builder_graph`](crate::config::SimConfig::builder_graph);
//! these constants and helpers describe the legacy ring default, which
//! [`gprs_core::CellGraph::ring7`] reproduces bit for bit.

pub use gprs_core::cluster::{handover_target, neighbors, MID_CELL, NUM_CELLS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_topology_matches_the_analytical_model() {
        // The simulator's graph *is* the model's graph.
        assert_eq!(NUM_CELLS, 7);
        assert_eq!(MID_CELL, 0);
        assert_eq!(neighbors(0).unwrap(), [1, 2, 3, 4, 5, 6]);
        let n = neighbors(3).unwrap();
        assert_eq!(n[0], MID_CELL);
        let mut sorted = n.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn handover_target_stays_in_range() {
        // Inclusive upper boundary: i == 12 drives u to exactly 1.0,
        // which clamps onto the last neighbour rather than panicking.
        for cell in 0..NUM_CELLS {
            for i in 0..=12 {
                let u = i as f64 / 12.0;
                let t = handover_target(cell, u).unwrap();
                assert!(t < NUM_CELLS);
                assert_ne!(t, cell);
            }
        }
    }
}
