//! The seven-cell hexagonal cluster and its handover topology.
//!
//! Cell 0 is the *mid cell* (where statistics are collected, as in the
//! paper); cells 1–6 form the surrounding ring. The cluster is closed
//! under handover — movements that would leave the cluster wrap back
//! onto it — so that in steady state every cell sees statistically
//! identical traffic and the mid cell's incoming handover flow equals
//! its outgoing flow (the assumption the Markov model's balancing
//! procedure makes, which the simulator lets us *test*).
//!
//! Wraparound scheme: the mid cell's six geometric neighbours are the
//! six ring cells. A ring cell's six geometric neighbours are the mid
//! cell, its two ring-adjacent cells, and three cells outside the
//! cluster; under the standard 7-cell tiling of the plane those outside
//! images are the remaining three ring cells. Hence: from the mid cell
//! a handover target is uniform over the ring; from a ring cell it is
//! uniform over the mid cell and the other five ring cells.

/// Number of cells in the cluster.
pub const NUM_CELLS: usize = 7;

/// Index of the mid (statistics) cell.
pub const MID_CELL: usize = 0;

/// The handover neighbours of `cell` (always 6, by wraparound).
///
/// # Panics
///
/// Panics if `cell >= NUM_CELLS`.
pub fn neighbors(cell: usize) -> [usize; 6] {
    assert!(cell < NUM_CELLS, "cell {cell} out of range");
    if cell == MID_CELL {
        [1, 2, 3, 4, 5, 6]
    } else {
        // Mid cell plus the five other ring cells.
        let mut out = [0usize; 6];
        out[0] = MID_CELL;
        let mut slot = 1;
        for other in 1..NUM_CELLS {
            if other != cell {
                out[slot] = other;
                slot += 1;
            }
        }
        out
    }
}

/// Picks a uniform handover target for a user leaving `cell`, given a
/// uniform random value `u ∈ [0, 1)`.
///
/// # Panics
///
/// Panics if `cell >= NUM_CELLS` or `u` is outside `[0, 1)`.
pub fn handover_target(cell: usize, u: f64) -> usize {
    assert!((0.0..1.0).contains(&u), "u must lie in [0, 1), got {u}");
    let nbrs = neighbors(cell);
    nbrs[(u * 6.0) as usize % 6]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_cell_neighbours_are_the_ring() {
        assert_eq!(neighbors(0), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn ring_cell_neighbours_include_mid_and_all_others() {
        let n = neighbors(3);
        assert_eq!(n[0], MID_CELL);
        let mut sorted = n.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn every_cell_has_six_distinct_neighbours() {
        for c in 0..NUM_CELLS {
            let mut n = neighbors(c).to_vec();
            n.sort_unstable();
            n.dedup();
            assert_eq!(n.len(), 6, "cell {c}");
            assert!(!n.contains(&c), "cell {c} neighbours itself");
        }
    }

    #[test]
    fn topology_is_symmetric() {
        // If b is a neighbour of a, then a is a neighbour of b — needed
        // for handover flow balance.
        for a in 0..NUM_CELLS {
            for &b in &neighbors(a) {
                assert!(neighbors(b).contains(&a), "asymmetry between {a} and {b}");
            }
        }
    }

    #[test]
    fn handover_target_is_uniform() {
        // Exercise all six bins.
        let mut seen = std::collections::HashSet::new();
        for i in 0..6 {
            let u = (i as f64 + 0.5) / 6.0;
            seen.insert(handover_target(0, u));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_panics() {
        let _ = neighbors(7);
    }
}
