//! Network-level discrete-event simulator of an integrated GSM/GPRS
//! cellular cluster.
//!
//! This is the reproduction of the paper's CSIM-based validation
//! simulator (Section 5.2): seven hexagonal cells with explicit handover
//! procedures, per-cell BSC buffering, a real TCP implementation (slow
//! start, congestion avoidance, fast retransmit, RTO), and — at the
//! highest fidelity — segmentation of packets into 20 ms TDMA radio
//! blocks. Statistics are collected in the mid cell only and reported
//! with batch-means 95 % confidence intervals, exactly as the paper
//! does.
//!
//! In contrast to the Markov model of `gprs-core`, nothing here is
//! balanced or aggregated: handover flows between cells *emerge* from
//! user mobility, packet-call durations stretch under congestion because
//! TCP slows down, and losses trigger genuine retransmissions.
//!
//! Each cell carries its **own** [`gprs_core::CellConfig`]
//! ([`SimConfig::cells`]) — mixed coding schemes, buffer sizes, channel
//! splits and traffic parameters are all simulable, matching the
//! generality of the analytical cluster fixed point
//! (`gprs_core::cluster::ClusterModel`); uniform configurations (the
//! [`SimConfig::builder`] special case, shown below) reproduce the
//! shared-parameter simulator bit for bit.
//!
//! # Example
//!
//! ```no_run
//! use gprs_core::CellConfig;
//! use gprs_sim::{SimConfig, GprsSimulator};
//! use gprs_traffic::TrafficModel;
//!
//! let cell = CellConfig::builder()
//!     .traffic_model(TrafficModel::Model3)
//!     .call_arrival_rate(0.5)
//!     .build()?;
//! let cfg = SimConfig::builder(cell)
//!     .warmup(2_000.0)
//!     .batches(10, 4_000.0)
//!     .seed(7)
//!     .build();
//! let results = GprsSimulator::new(cfg).run();
//! println!("CDT = {}", results.carried_data_traffic);
//! # Ok::<(), gprs_core::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Duration of one GPRS radio block (4 TDMA frames of 4.615 ms ≈ 20 ms),
/// the granularity at which the TDMA radio model schedules transmission.
pub const RADIO_BLOCK_SECONDS: f64 = 0.02;

pub mod cell;
pub mod cluster;
pub mod config;
pub mod events;
pub mod packet;
pub mod replication;
pub mod results;
pub mod simulator;
pub mod supervision;
pub mod tcp;

pub use config::{RadioModel, SimConfig, SimConfigBuilder, TcpConfig};
pub use replication::{run_replications, ReplicationOptions, TargetMeasure};
pub use results::{ReplicatedResults, SimResults};
pub use simulator::GprsSimulator;
pub use supervision::{LoadSupervisor, SupervisionConfig};
