//! The simulator's event alphabet.

use crate::packet::{Packet, SessionId};
use crate::tcp::Seq;

/// Everything that can happen in the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new GSM voice call requests admission in `cell`.
    GsmArrival {
        /// Target cell.
        cell: usize,
    },
    /// An active GSM call in `cell` ends its stay (completion or
    /// handover — decided when the event fires, which is exact for
    /// exponential races).
    GsmLeave {
        /// The cell the call currently occupies.
        cell: usize,
    },
    /// A new GPRS session requests admission in `cell`.
    GprsArrival {
        /// Target cell.
        cell: usize,
    },
    /// A session's dwell timer expired: hand it over to a neighbour.
    SessionDwell {
        /// The moving session.
        session: SessionId,
    },
    /// The session's application emits the next packet of the current
    /// packet call into the TCP send buffer.
    AppEmission {
        /// The emitting session.
        session: SessionId,
        /// Packet-call epoch the emission belongs to (stale guard).
        call_epoch: u64,
    },
    /// A reading period ended; the session starts its next packet call.
    ReadingEnd {
        /// The session.
        session: SessionId,
    },
    /// A transmitted packet reaches the BSC after the wired delay.
    BscArrival {
        /// The packet.
        packet: Packet,
    },
    /// Processor-sharing radio model: the head-of-line packet in `cell`
    /// finished transmission.
    ServiceComplete {
        /// The serving cell.
        cell: usize,
    },
    /// TDMA radio model: a 20 ms radio-block boundary in `cell`.
    RadioTick {
        /// The ticking cell.
        cell: usize,
    },
    /// A cumulative ACK reaches the TCP source.
    AckArrival {
        /// The session whose transfer is acknowledged.
        session: SessionId,
        /// Packet-call epoch (stale guard).
        call_epoch: u64,
        /// Cumulative ACK value.
        ack: Seq,
    },
    /// A retransmission timer fired.
    RtoTimer {
        /// The session.
        session: SessionId,
        /// Packet-call epoch (stale guard).
        call_epoch: u64,
        /// Sender epoch the timer was armed for (stale guard).
        rto_epoch: u64,
    },
    /// A statistics batch boundary.
    BatchBoundary,
    /// A load-supervision decision epoch (capacity on demand).
    Supervision,
}
