//! TCP Reno for the downlink transfers.
//!
//! One [`TcpSender`] instance governs each packet call (one "document
//! download"). The implementation covers the mechanisms the paper lists
//! for its simulator: slow start, congestion avoidance, retransmission
//! on both timeout and triple duplicate ACK, with Jacobson/Karels RTT
//! estimation and Karn's rule for samples. The sender is a pure state
//! machine — it never touches the event calendar — so it can be unit
//! tested deterministically; the simulator wires its outputs (packets to
//! transmit, the RTO deadline) into simulated time.

use crate::config::TcpConfig;
use std::collections::BTreeSet;

/// Sequence number of a data packet within one transfer (1-based).
pub type Seq = u64;

/// Packets the sender wants transmitted *now* (returned by the event
/// handlers).
pub type ToSend = Vec<Seq>;

/// Sender-side TCP Reno state machine.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    /// Congestion window, packets (fractional growth in congestion
    /// avoidance).
    cwnd: f64,
    ssthresh: f64,
    /// Highest sequence number made available by the application.
    app_limit: Seq,
    /// Next never-before-sent sequence number.
    next_new: Seq,
    /// Cumulative ACK received so far (all `<= cum_ack` delivered).
    cum_ack: Seq,
    /// Transmitted but unacknowledged sequence numbers.
    in_flight: BTreeSet<Seq>,
    /// Duplicate-ACK counter.
    dup_acks: u32,
    /// In fast recovery until `recover` is acked.
    fast_recovery: bool,
    recover: Seq,
    /// RTT estimation (Jacobson/Karels).
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    /// Timestamp of the *first* transmission of the oldest timed packet,
    /// with Karn's rule: retransmitted packets are never timed.
    timing: Option<(Seq, f64)>,
    /// Monotone counter invalidating superseded RTO timers.
    rto_epoch: u64,
    retransmissions: u64,
    timeouts: u64,
}

impl TcpSender {
    /// Creates a sender with `cwnd = 1` (slow start).
    pub fn new(cfg: TcpConfig) -> Self {
        TcpSender {
            cfg,
            cwnd: 1.0,
            ssthresh: cfg.initial_ssthresh,
            app_limit: 0,
            next_new: 1,
            cum_ack: 0,
            in_flight: BTreeSet::new(),
            dup_acks: 0,
            fast_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: 3.0,
            timing: None,
            rto_epoch: 0,
            retransmissions: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window (packets).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Current retransmission timeout (seconds).
    pub fn rto(&self) -> f64 {
        self.rto
    }

    /// Smoothed RTT estimate, if at least one sample was taken.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// Total retransmitted packets.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total RTO expirations acted upon.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Cumulative ACK received so far.
    pub fn cum_ack(&self) -> Seq {
        self.cum_ack
    }

    /// Whether everything the application produced has been delivered.
    pub fn all_acked(&self) -> bool {
        self.cum_ack >= self.app_limit
    }

    /// Number of unacknowledged transmitted packets.
    pub fn flight_size(&self) -> usize {
        self.in_flight.len()
    }

    /// Epoch stamp for RTO timers; a fired timer is stale unless its
    /// epoch matches.
    pub fn rto_epoch(&self) -> u64 {
        self.rto_epoch
    }

    /// Whether an RTO timer should currently be running.
    pub fn rto_armed(&self) -> bool {
        !self.in_flight.is_empty()
    }

    fn window(&self) -> usize {
        (self.cwnd.floor() as usize)
            .min(self.cfg.receiver_window as usize)
            .max(1)
    }

    /// Fills the window with new data, returning sequences to transmit.
    fn pump(&mut self, now: f64) -> ToSend {
        let mut out = Vec::new();
        while self.in_flight.len() < self.window() && self.next_new <= self.app_limit {
            let seq = self.next_new;
            self.next_new += 1;
            self.in_flight.insert(seq);
            if self.timing.is_none() {
                self.timing = Some((seq, now));
            }
            out.push(seq);
        }
        if !out.is_empty() {
            self.rto_epoch += 1; // (re)arm timer from now
        }
        out
    }

    /// The application made packets up to `limit` available (monotone).
    /// Returns packets to transmit now.
    pub fn on_app_data(&mut self, limit: Seq, now: f64) -> ToSend {
        assert!(limit >= self.app_limit, "app data limit must be monotone");
        self.app_limit = limit;
        self.pump(now)
    }

    /// A cumulative ACK for everything `<= ack` arrived.
    /// Returns packets to transmit now (new data and/or a fast
    /// retransmission).
    pub fn on_ack(&mut self, ack: Seq, now: f64) -> ToSend {
        if ack > self.cum_ack {
            // New data acknowledged.
            let newly = ack - self.cum_ack;
            self.cum_ack = ack;
            self.in_flight = self.in_flight.split_off(&(ack + 1));
            self.dup_acks = 0;

            // RTT sample (Karn: only untimed-clean packets are timed).
            if let Some((seq, sent_at)) = self.timing {
                if ack >= seq {
                    self.sample_rtt(now - sent_at);
                    self.timing = None;
                }
            }

            if self.fast_recovery {
                if ack >= self.recover {
                    // Full recovery: deflate to ssthresh.
                    self.fast_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // Partial ACK (NewReno): retransmit the next hole.
                    let missing = ack + 1;
                    if missing < self.next_new {
                        self.in_flight.insert(missing);
                        self.retransmissions += 1;
                        self.rto_epoch += 1;
                        let mut out = vec![missing];
                        out.extend(self.pump(now));
                        return out;
                    }
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start: one packet per ACKed packet.
                self.cwnd += newly as f64;
            } else {
                // Congestion avoidance: ~1 packet per RTT.
                self.cwnd += newly as f64 / self.cwnd;
            }
            self.rto_epoch += 1; // restart timer on forward progress
            self.pump(now)
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.fast_recovery {
                // Window inflation keeps the pipe full.
                self.cwnd += 1.0;
                return self.pump(now);
            }
            if self.dup_acks == 3 {
                // Fast retransmit.
                let missing = self.cum_ack + 1;
                if missing < self.next_new {
                    self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
                    self.cwnd = self.ssthresh + 3.0;
                    self.fast_recovery = true;
                    self.recover = self.next_new - 1;
                    self.in_flight.insert(missing);
                    self.retransmissions += 1;
                    self.timing = None; // Karn
                    self.rto_epoch += 1;
                    return vec![missing];
                }
            }
            Vec::new()
        }
    }

    /// The RTO timer fired (with matching epoch). Returns packets to
    /// retransmit (the oldest outstanding one).
    pub fn on_rto(&mut self, _now: f64) -> ToSend {
        if self.in_flight.is_empty() {
            return Vec::new();
        }
        self.timeouts += 1;
        self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.fast_recovery = false;
        self.dup_acks = 0;
        // Exponential backoff.
        self.rto = (self.rto * 2.0).min(self.cfg.max_rto);
        self.timing = None; // Karn
        self.rto_epoch += 1;
        let oldest = *self.in_flight.iter().next().expect("flight non-empty");
        self.retransmissions += 1;
        vec![oldest]
    }

    fn sample_rtt(&mut self, rtt: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(s) => {
                let err = rtt - s;
                self.rttvar = 0.75 * self.rttvar + 0.25 * err.abs();
                self.srtt = Some(s + 0.125 * err);
            }
        }
        self.rto = (self.srtt.expect("just set") + 4.0 * self.rttvar)
            .clamp(self.cfg.min_rto, self.cfg.max_rto);
    }
}

/// Receiver side: tracks in-order delivery and produces cumulative ACKs.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    next_expected: Seq,
    out_of_order: BTreeSet<Seq>,
}

impl TcpReceiver {
    /// Creates a receiver expecting sequence 1.
    pub fn new() -> Self {
        TcpReceiver {
            next_expected: 1,
            out_of_order: BTreeSet::new(),
        }
    }

    /// Processes an arriving packet; returns the cumulative ACK to send
    /// back (the highest in-order sequence received).
    pub fn on_packet(&mut self, seq: Seq) -> Seq {
        if seq >= self.next_expected {
            self.out_of_order.insert(seq);
            while self.out_of_order.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        }
        self.next_expected - 1
    }

    /// Highest in-order sequence delivered.
    pub fn cumulative(&self) -> Seq {
        self.next_expected - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> TcpSender {
        TcpSender::new(TcpConfig::default())
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender();
        let out = s.on_app_data(100, 0.0);
        assert_eq!(out, vec![1]); // cwnd = 1
        let out = s.on_ack(1, 0.1);
        assert_eq!(out, vec![2, 3]); // cwnd = 2
        let mut sent = Vec::new();
        sent.extend(s.on_ack(2, 0.2));
        sent.extend(s.on_ack(3, 0.3));
        assert_eq!(sent, vec![4, 5, 6, 7]); // cwnd = 4
        assert!((s.cwnd() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut s = sender();
        // Force past ssthresh.
        let _ = s.on_app_data(1000, 0.0);
        while s.cwnd() < s.ssthresh() {
            let ack = s.cum_ack() + 1;
            let _ = s.on_ack(ack, 0.0);
        }
        let w0 = s.cwnd();
        // One full window of ACKs grows cwnd by ~1.
        let acks = w0.floor() as u64;
        for _ in 0..acks {
            let ack = s.cum_ack() + 1;
            let _ = s.on_ack(ack, 0.0);
        }
        assert!(
            (s.cwnd() - (w0 + 1.0)).abs() < 0.1,
            "w0={w0} w1={}",
            s.cwnd()
        );
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let mut s = sender();
        let _ = s.on_app_data(50, 0.0);
        // Ramp up and lose packet (cum_ack+1).
        for ack in 1..=4 {
            let _ = s.on_ack(ack, 0.0);
        }
        let flight_before = s.flight_size();
        assert!(flight_before >= 4);
        // Three duplicate ACKs for 4.
        assert!(s.on_ack(4, 0.1).is_empty());
        assert!(s.on_ack(4, 0.1).is_empty());
        let retx = s.on_ack(4, 0.1);
        assert_eq!(retx, vec![5], "expected fast retransmit of seq 5");
        assert_eq!(s.retransmissions(), 1);
        assert!(s.cwnd() < flight_before as f64 + 3.1);
    }

    #[test]
    fn fast_recovery_deflates_on_full_ack() {
        let mut s = sender();
        let _ = s.on_app_data(50, 0.0);
        for ack in 1..=4 {
            let _ = s.on_ack(ack, 0.0);
        }
        for _ in 0..3 {
            let _ = s.on_ack(4, 0.1);
        }
        assert!(s.fast_recovery);
        let ssthresh = s.ssthresh();
        // Ack everything outstanding (full recovery).
        let recover = s.recover;
        let _ = s.on_ack(recover, 0.2);
        assert!(!s.fast_recovery);
        assert!((s.cwnd() - ssthresh).abs() < 1e-9);
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut s = sender();
        let _ = s.on_app_data(50, 0.0);
        for ack in 1..=4 {
            let _ = s.on_ack(ack, 0.0);
        }
        let rto_before = s.rto();
        let retx = s.on_rto(5.0);
        assert_eq!(retx, vec![5]); // oldest outstanding
        assert!((s.cwnd() - 1.0).abs() < 1e-12);
        assert!(s.rto() >= rto_before * 2.0 - 1e-9 || s.rto() == 60.0);
        assert_eq!(s.timeouts(), 1);
    }

    #[test]
    fn rtt_estimation_sets_rto() {
        let mut s = sender();
        let _ = s.on_app_data(100_000, 0.0);
        let _ = s.on_ack(1, 0.8); // first sample: srtt = 0.8
        assert!((s.srtt().unwrap() - 0.8).abs() < 1e-12);
        // rto = srtt + 4·rttvar = 0.8 + 4·0.4 = 2.4.
        assert!((s.rto() - 2.4).abs() < 1e-9);
        // Acknowledge whole windows with a constant 0.8 s RTT: rttvar
        // decays, so the RTO shrinks toward srtt.
        for i in 0..200u64 {
            let ack = s.next_new - 1; // everything transmitted so far
            let _ = s.on_ack(ack, 0.8 * (i + 2) as f64);
        }
        assert!(s.rto() <= 2.4);
        assert!((s.srtt().unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn karns_rule_skips_retransmitted_samples() {
        let mut s = sender();
        let _ = s.on_app_data(10, 0.0);
        let _ = s.on_rto(3.0); // seq 1 retransmitted; timing cleared
        assert!(s.srtt().is_none());
        let _ = s.on_ack(1, 6.0); // must NOT create a bogus 6 s sample
        assert!(s.srtt().is_none());
    }

    #[test]
    fn app_limited_sender_stops() {
        let mut s = sender();
        let out = s.on_app_data(2, 0.0);
        assert_eq!(out, vec![1]);
        let out = s.on_ack(1, 0.1);
        assert_eq!(out, vec![2]);
        let out = s.on_ack(2, 0.2);
        assert!(out.is_empty());
        assert!(s.all_acked());
        assert!(!s.rto_armed());
    }

    #[test]
    fn receiver_produces_cumulative_acks() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_packet(1), 1);
        assert_eq!(r.on_packet(3), 1); // gap at 2
        assert_eq!(r.on_packet(4), 1);
        assert_eq!(r.on_packet(2), 4); // hole filled
        assert_eq!(r.cumulative(), 4);
        // Duplicate delivery is harmless.
        assert_eq!(r.on_packet(2), 4);
    }

    #[test]
    fn whole_transfer_with_loss_completes() {
        // Deterministic end-to-end: direct wire, drop seq 5 once.
        let mut s = sender();
        let mut r = TcpReceiver::new();
        let total = 30u64;
        let mut to_wire: Vec<Seq> = s.on_app_data(total, 0.0);
        let mut dropped_once = false;
        let mut now = 0.0;
        let mut steps = 0;
        while !s.all_acked() {
            steps += 1;
            assert!(steps < 10_000, "transfer did not complete");
            now += 0.01;
            if to_wire.is_empty() {
                // Nothing in flight can only happen via RTO.
                to_wire.extend(s.on_rto(now));
                continue;
            }
            let mut acks = Vec::new();
            for seq in std::mem::take(&mut to_wire) {
                if seq == 5 && !dropped_once {
                    dropped_once = true;
                    continue;
                }
                acks.push(r.on_packet(seq));
            }
            for a in acks {
                to_wire.extend(s.on_ack(a, now));
            }
        }
        assert_eq!(r.cumulative(), total);
        assert!(s.retransmissions() >= 1);
    }
}
