//! Load supervision: online re-dimensioning of reserved PDCHs.
//!
//! GPRS specifies a *load supervision procedure* that "monitors the load
//! of the PDCHs in the cell" and changes the number of channels
//! allocated to GPRS "according to the current demand" (paper
//! Section 2). The Markov model treats the reservation as static; this
//! module adds the dynamic procedure to the simulator, so the
//! reproduction can quantify what the paper's future-work direction
//! (adaptive performance management) buys.
//!
//! [`LoadSupervisor`] is a pure state machine — no simulator types — so
//! its hysteresis behaviour is unit-testable in isolation. The
//! simulator feeds it one observation per supervision epoch (the
//! mid-term buffer occupancy as a fraction of `K`, smoothed by EWMA)
//! and applies the returned adjustments to the cell's channel split.
//!
//! The asymmetry mirrors [`gprs_core::adaptive::Hysteresis`]: raising
//! the reservation happens as soon as the smoothed occupancy crosses
//! the upper threshold (under-provisioning violates QoS *now*), while
//! lowering requires a streak of consecutive quiet epochs
//! (over-provisioning merely idles a channel).
//!
//! # Example
//!
//! ```
//! use gprs_sim::supervision::{Adjustment, LoadSupervisor, SupervisionConfig};
//!
//! let mut sup = LoadSupervisor::new(SupervisionConfig::default(), 1);
//! // A full buffer, epoch after epoch, eventually raises the
//! // reservation (the EWMA must cross the threshold first).
//! let mut raised = false;
//! for _ in 0..10 {
//!     if sup.observe(1.0) == Some(Adjustment::Raised) {
//!         raised = true;
//!         break;
//!     }
//! }
//! assert!(raised);
//! assert_eq!(sup.reserved(), 2);
//! ```
//!
//! [`gprs_core::adaptive::Hysteresis`]: ../../gprs_core/adaptive/struct.Hysteresis.html

/// Parameters of the per-cell load supervision procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisionConfig {
    /// Seconds between supervision decisions.
    pub epoch: f64,
    /// EWMA weight of the newest occupancy sample, in `(0, 1]`
    /// (1 = no smoothing).
    pub ewma_weight: f64,
    /// Raise the reservation when the smoothed buffer occupancy
    /// (fraction of `K`) exceeds this.
    pub raise_above: f64,
    /// Lower it when the smoothed occupancy stays below this for
    /// [`down_streak`](Self::down_streak) consecutive epochs.
    pub lower_below: f64,
    /// Minimum reserved PDCHs (the paper's base setting keeps >= 1).
    pub min_reserved: usize,
    /// Maximum reserved PDCHs.
    pub max_reserved: usize,
    /// Consecutive quiet epochs required before lowering.
    pub down_streak: usize,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            epoch: 10.0,
            ewma_weight: 0.3,
            raise_above: 0.5,
            lower_below: 0.1,
            min_reserved: 1,
            max_reserved: 4,
            down_streak: 3,
        }
    }
}

impl SupervisionConfig {
    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `epoch <= 0`, `ewma_weight` is outside `(0, 1]`,
    /// thresholds are not `0 <= lower_below < raise_above <= 1`,
    /// `min_reserved > max_reserved`, or `down_streak == 0`.
    pub fn validate(&self) {
        assert!(
            self.epoch.is_finite() && self.epoch > 0.0,
            "supervision epoch must be positive"
        );
        assert!(
            self.ewma_weight > 0.0 && self.ewma_weight <= 1.0,
            "EWMA weight must lie in (0, 1]"
        );
        assert!(
            0.0 <= self.lower_below
                && self.lower_below < self.raise_above
                && self.raise_above <= 1.0,
            "thresholds must satisfy 0 <= lower_below < raise_above <= 1"
        );
        assert!(
            self.min_reserved <= self.max_reserved,
            "min_reserved must not exceed max_reserved"
        );
        assert!(self.down_streak >= 1, "down_streak must be >= 1");
    }

    /// A copy whose reservation range fits a cell with `total_channels`
    /// physical channels: `max_reserved` is capped at
    /// `total_channels − 1` (supervision must leave at least one voice
    /// channel) and `min_reserved` is lowered to stay `<= max_reserved`.
    ///
    /// [`SimConfig`](crate::SimConfig) validates the range per cell at
    /// build time; the simulator additionally clamps through this when
    /// instantiating per-cell supervisors, so a configuration that
    /// bypassed the builder degrades gracefully instead of underflowing
    /// the voice-cap arithmetic mid-run.
    pub fn clamped_to(mut self, total_channels: usize) -> Self {
        let cap = total_channels.saturating_sub(1);
        self.max_reserved = self.max_reserved.min(cap);
        self.min_reserved = self.min_reserved.min(self.max_reserved);
        self
    }
}

/// Direction of a reservation change issued by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// One more PDCH was reserved.
    Raised,
    /// One reserved PDCH was released to the on-demand pool.
    Lowered,
}

/// The per-cell supervision state machine.
#[derive(Debug, Clone)]
pub struct LoadSupervisor {
    cfg: SupervisionConfig,
    reserved: usize,
    ewma: f64,
    quiet_epochs: usize,
}

impl LoadSupervisor {
    /// Creates a supervisor starting from `initial` reserved PDCHs
    /// (clamped into the configured range).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`SupervisionConfig::validate`]).
    pub fn new(cfg: SupervisionConfig, initial: usize) -> Self {
        cfg.validate();
        LoadSupervisor {
            reserved: initial.clamp(cfg.min_reserved, cfg.max_reserved),
            cfg,
            ewma: 0.0,
            quiet_epochs: 0,
        }
    }

    /// Currently reserved PDCHs.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// The smoothed occupancy estimate.
    pub fn smoothed_occupancy(&self) -> f64 {
        self.ewma
    }

    /// Processes one epoch's occupancy sample (`queue_len / K`, clamped
    /// to `[0, 1]`) and possibly adjusts the reservation by one PDCH.
    ///
    /// At most one step per epoch in either direction — the procedure is
    /// deliberately gradual, like the capacity-on-demand allocation it
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is negative or non-finite.
    pub fn observe(&mut self, occupancy: f64) -> Option<Adjustment> {
        assert!(
            occupancy.is_finite() && occupancy >= 0.0,
            "occupancy must be >= 0"
        );
        let x = occupancy.min(1.0);
        let w = self.cfg.ewma_weight;
        self.ewma = w * x + (1.0 - w) * self.ewma;

        if self.ewma > self.cfg.raise_above {
            self.quiet_epochs = 0;
            if self.reserved < self.cfg.max_reserved {
                self.reserved += 1;
                return Some(Adjustment::Raised);
            }
            return None;
        }
        if self.ewma < self.cfg.lower_below {
            self.quiet_epochs += 1;
            if self.quiet_epochs >= self.cfg.down_streak && self.reserved > self.cfg.min_reserved {
                self.quiet_epochs = 0;
                self.reserved -= 1;
                return Some(Adjustment::Lowered);
            }
            return None;
        }
        // Between the thresholds: hold, and require a fresh quiet streak.
        self.quiet_epochs = 0;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisionConfig {
        SupervisionConfig {
            epoch: 5.0,
            ewma_weight: 1.0, // no smoothing: tests drive the raw signal
            raise_above: 0.5,
            lower_below: 0.1,
            min_reserved: 1,
            max_reserved: 4,
            down_streak: 3,
        }
    }

    #[test]
    fn sustained_pressure_raises_one_step_per_epoch() {
        let mut s = LoadSupervisor::new(cfg(), 1);
        assert_eq!(s.observe(0.9), Some(Adjustment::Raised));
        assert_eq!(s.reserved(), 2);
        assert_eq!(s.observe(0.9), Some(Adjustment::Raised));
        assert_eq!(s.observe(0.9), Some(Adjustment::Raised));
        assert_eq!(s.reserved(), 4);
        // Saturates at the maximum.
        assert_eq!(s.observe(0.9), None);
        assert_eq!(s.reserved(), 4);
    }

    #[test]
    fn lowering_requires_a_quiet_streak() {
        let mut s = LoadSupervisor::new(cfg(), 3);
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), Some(Adjustment::Lowered));
        assert_eq!(s.reserved(), 2);
        // The streak restarts after a release.
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), Some(Adjustment::Lowered));
        // Floor respected.
        for _ in 0..10 {
            assert_eq!(s.observe(0.0), None);
        }
        assert_eq!(s.reserved(), 1);
    }

    #[test]
    fn mid_band_occupancy_resets_the_quiet_streak() {
        let mut s = LoadSupervisor::new(cfg(), 3);
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.3), None); // between thresholds: reset
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), None);
        assert_eq!(s.observe(0.0), Some(Adjustment::Lowered));
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut smooth = cfg();
        smooth.ewma_weight = 0.2;
        let mut s = LoadSupervisor::new(smooth, 1);
        // A single full-buffer spike does not push EWMA 0 -> >0.5.
        assert_eq!(s.observe(1.0), None);
        assert!(s.smoothed_occupancy() < 0.5);
        // Sustained pressure eventually does.
        let mut raised = false;
        for _ in 0..20 {
            if s.observe(1.0) == Some(Adjustment::Raised) {
                raised = true;
                break;
            }
        }
        assert!(raised);
    }

    #[test]
    fn initial_reservation_is_clamped() {
        let s = LoadSupervisor::new(cfg(), 99);
        assert_eq!(s.reserved(), 4);
        let s = LoadSupervisor::new(cfg(), 0);
        assert_eq!(s.reserved(), 1);
    }

    #[test]
    fn occupancy_above_one_is_clamped() {
        let mut s = LoadSupervisor::new(cfg(), 1);
        let _ = s.observe(7.0);
        assert!(s.smoothed_occupancy() <= 1.0);
    }

    #[test]
    fn clamped_to_fits_the_range_into_the_cell() {
        let c = cfg(); // min 1, max 4
        let small = c.clamped_to(3);
        assert_eq!(small.max_reserved, 2);
        assert_eq!(small.min_reserved, 1);
        // A one-channel cell forces the whole range to zero.
        let tiny = c.clamped_to(1);
        assert_eq!(tiny.max_reserved, 0);
        assert_eq!(tiny.min_reserved, 0);
        tiny.validate();
        // Roomy cells are untouched.
        let roomy = c.clamped_to(20);
        assert_eq!(roomy.max_reserved, 4);
        assert_eq!(roomy.min_reserved, 1);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_inverted_thresholds() {
        let mut c = cfg();
        c.raise_above = 0.05;
        LoadSupervisor::new(c, 1);
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn rejects_negative_occupancy() {
        let mut s = LoadSupervisor::new(cfg(), 1);
        let _ = s.observe(-0.1);
    }
}
