//! Parallel independent replications of the network simulator.
//!
//! The paper's CSIM runs take "in the order of hours" for sensitive
//! measures because one long batch-means run cannot be parallelized —
//! but independent *replications* can. [`run_replications`] drives the
//! wave-parallel stopping rule of [`gprs_des::replication`] with one
//! full simulator run per replication:
//!
//! * replication `r` gets its own master seed,
//!   `RngStreams::new(cfg.seed).stream_seed(r)`, so its event stream is
//!   decorrelated from every sibling *and* fully determined by the
//!   configuration — rerunning the campaign reproduces every
//!   replication bit-for-bit;
//! * the waves launch `min_replications` runs concurrently, then top up
//!   one speculative run per worker until the 95 % confidence interval
//!   of the chosen [`TargetMeasure`] meets the relative-precision
//!   target (or the budget is exhausted, which the `converged` flag
//!   reports honestly);
//! * the merged [`ReplicatedResults`] carries a Student-t interval over
//!   the replication means for *every* measure, not just the stopping
//!   target.
//!
//! Because speculative runs past the stopping index are discarded, the
//! returned results are **bit-identical for any thread count** — the
//! tier-1 determinism suite asserts full structural equality between
//! 1-, 2- and 8-thread runs.
//!
//! # Example
//!
//! ```no_run
//! use gprs_core::CellConfig;
//! use gprs_sim::{run_replications, ReplicationOptions, SimConfig, TargetMeasure};
//! use gprs_traffic::TrafficModel;
//!
//! let cell = CellConfig::builder()
//!     .traffic_model(TrafficModel::Model3)
//!     .call_arrival_rate(0.5)
//!     .build()?;
//! let cfg = SimConfig::builder(cell).seed(7).build();
//! // 5 % relative precision on carried voice traffic, 4..=32 runs.
//! let opts = ReplicationOptions::new(0.05, 4, 32)
//!     .with_target(TargetMeasure::CarriedVoiceTraffic);
//! let results = run_replications(&cfg, &opts);
//! println!("{}", results.summary());
//! # Ok::<(), gprs_core::ModelError>(())
//! ```

use crate::config::SimConfig;
use crate::results::{ReplicatedResults, SimResults};
use crate::simulator::GprsSimulator;
use gprs_des::replication::run_replications_waves;
use gprs_des::rng::RngStreams;
use gprs_des::sequential::SequentialOptions;

/// The simulator measure whose confidence interval drives the
/// replication stopping rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetMeasure {
    /// CDT: mean PDCHs carrying data (the default — the paper's
    /// headline data-path measure).
    #[default]
    CarriedDataTraffic,
    /// CVT: mean busy voice channels.
    CarriedVoiceTraffic,
    /// PLP: packet loss probability (the paper's canonical *sensitive*
    /// measure; expect large budgets).
    PacketLossProbability,
    /// QD: mean BSC queueing delay.
    QueueingDelay,
    /// ATU: per-user throughput.
    ThroughputPerUser,
    /// AGS: mean active GPRS sessions.
    AvgGprsSessions,
    /// GSM voice blocking probability.
    GsmBlockingProbability,
    /// GPRS session blocking probability.
    GprsBlockingProbability,
    /// Mid-cell incoming GPRS handover rate.
    GprsHandoverInRate,
}

impl TargetMeasure {
    /// Reads this measure's point estimate off one replication.
    pub fn extract(&self, results: &SimResults) -> f64 {
        match self {
            TargetMeasure::CarriedDataTraffic => results.carried_data_traffic.mean,
            TargetMeasure::CarriedVoiceTraffic => results.carried_voice_traffic.mean,
            TargetMeasure::PacketLossProbability => results.packet_loss_probability.mean,
            TargetMeasure::QueueingDelay => results.queueing_delay.mean,
            TargetMeasure::ThroughputPerUser => results.throughput_per_user_kbps.mean,
            TargetMeasure::AvgGprsSessions => results.avg_gprs_sessions.mean,
            TargetMeasure::GsmBlockingProbability => results.gsm_blocking_probability.mean,
            TargetMeasure::GprsBlockingProbability => results.gprs_blocking_probability.mean,
            TargetMeasure::GprsHandoverInRate => results.gprs_handover_in_rate.mean,
        }
    }
}

/// Options for [`run_replications`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationOptions {
    /// The sequential stopping rule: relative half-width target,
    /// minimum and maximum replication counts.
    pub precision: SequentialOptions,
    /// The measure the stopping rule watches.
    pub target: TargetMeasure,
    /// Worker threads for the replication waves; `0` (the default)
    /// uses [`gprs_exec::num_threads`]. Results are bit-identical for
    /// any value.
    pub threads: usize,
}

impl ReplicationOptions {
    /// Creates options targeting `target_rhw` relative half-width on
    /// the default measure with the given replication bounds.
    ///
    /// # Panics
    ///
    /// As [`SequentialOptions::new`]: panics if `target_rhw` is not in
    /// `(0, 1)`, `min_replications < 2`, or `max < min`.
    pub fn new(target_rhw: f64, min_replications: usize, max_replications: usize) -> Self {
        ReplicationOptions {
            precision: SequentialOptions::new(target_rhw, min_replications, max_replications),
            target: TargetMeasure::default(),
            threads: 0,
        }
    }

    /// Sets the stopping-rule measure, returning `self` for chaining.
    pub fn with_target(mut self, target: TargetMeasure) -> Self {
        self.target = target;
        self
    }

    /// Sets the worker count (`0` = auto), returning `self` for
    /// chaining.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Runs independent simulator replications in parallel waves until the
/// target measure's 95 % confidence interval meets the precision
/// target, merging every measure across replications.
///
/// `cfg.seed` seeds the *family*: replication `r` runs with master
/// seed `RngStreams::new(cfg.seed).stream_seed(r)`. The outcome is
/// bit-identical for any `opts.threads`, including 1.
pub fn run_replications(cfg: &SimConfig, opts: &ReplicationOptions) -> ReplicatedResults {
    let seeds = RngStreams::new(cfg.seed);
    let target = opts.target;
    let run = run_replications_waves(
        &opts.precision,
        opts.threads,
        |rep| {
            let mut c = cfg.clone();
            c.seed = seeds.stream_seed(rep);
            GprsSimulator::new(c).run()
        },
        |results| target.extract(results),
    );
    ReplicatedResults::from_run(run, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::CellConfig;
    use gprs_traffic::TrafficModel;

    fn tiny_cfg() -> SimConfig {
        // Deliberately short runs: these tests exercise the replication
        // plumbing, not simulator accuracy.
        let cell = CellConfig::builder()
            .traffic_model(TrafficModel::Model3)
            .total_channels(6)
            .buffer_capacity(10)
            .max_gprs_sessions(3)
            .call_arrival_rate(0.2)
            .build()
            .unwrap();
        SimConfig::builder(cell)
            .seed(42)
            .warmup(50.0)
            .batches(2, 100.0)
            .build()
    }

    #[test]
    fn replications_get_distinct_decorrelated_seeds() {
        let cfg = tiny_cfg();
        let opts = ReplicationOptions::new(0.9, 3, 3).with_threads(2);
        let merged = run_replications(&cfg, &opts);
        assert_eq!(merged.replications, 3);
        assert_eq!(merged.runs.len(), 3);
        // Independent seeds: the event streams must differ.
        assert_ne!(
            merged.runs[0].events_processed,
            merged.runs[1].events_processed
        );
        // Totals aggregate over replications.
        let events: u64 = merged.runs.iter().map(|r| r.events_processed).sum();
        assert_eq!(merged.events_processed, events);
        assert!((merged.simulated_time - 3.0 * cfg.horizon()).abs() < 1e-6);
    }

    #[test]
    fn stopping_rule_watches_the_requested_target() {
        let cfg = tiny_cfg();
        // CVT is robust: a loose target converges at the minimum.
        let opts = ReplicationOptions::new(0.8, 2, 16)
            .with_target(TargetMeasure::CarriedVoiceTraffic)
            .with_threads(2);
        let merged = run_replications(&cfg, &opts);
        assert!(merged.converged);
        assert_eq!(
            merged.target_interval().batches,
            merged.replications,
            "target interval must span exactly the performed replications"
        );
        let rhw = merged.target_interval().relative_half_width();
        assert!(rhw <= 0.8, "stopped with rhw {rhw}");
    }

    #[test]
    fn merged_intervals_average_the_replication_means() {
        let cfg = tiny_cfg();
        let opts = ReplicationOptions::new(0.9, 3, 3).with_threads(1);
        let merged = run_replications(&cfg, &opts);
        let want: f64 = merged
            .runs
            .iter()
            .map(|r| r.carried_voice_traffic.mean)
            .sum::<f64>()
            / merged.runs.len() as f64;
        assert!((merged.carried_voice_traffic.mean - want).abs() < 1e-12);
    }
}
