//! Data packets in flight through the simulated network.

use crate::tcp::Seq;

/// Identifier of a GPRS session (unique over a run).
pub type SessionId = u64;

/// A downlink data packet between TCP source and mobile station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Owning session.
    pub session: SessionId,
    /// Transfer-local TCP sequence number.
    pub seq: Seq,
    /// Packet-call epoch within the session: ACKs and deliveries from a
    /// previous call (stale after handover/abort) are recognized and
    /// ignored by comparing epochs.
    pub call_epoch: u64,
    /// Cell whose BSC this packet was routed to.
    pub cell: usize,
    /// Time the packet entered the BSC buffer (set on arrival; used for
    /// the queueing-delay statistic).
    pub bsc_arrival: f64,
    /// Radio blocks still to transmit (TDMA radio model only).
    pub blocks_remaining: u32,
}

/// Number of 20 ms radio blocks needed for one 480-byte packet at the
/// given per-PDCH bit rate.
pub fn blocks_per_packet(data_rate_bps: f64) -> u32 {
    let bits_per_block = data_rate_bps * crate::RADIO_BLOCK_SECONDS;
    (gprs_traffic::params::PACKET_SIZE_BITS / bits_per_block).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs2_packet_needs_15_blocks() {
        // CS-2: 13.4 kbit/s → 268 bits per 20 ms block; 3840/268 = 14.33 → 15.
        assert_eq!(blocks_per_packet(13_400.0), 15);
    }

    #[test]
    fn cs4_packet_needs_fewer_blocks() {
        assert!(blocks_per_packet(21_400.0) < blocks_per_packet(13_400.0));
    }
}
