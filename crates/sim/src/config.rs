//! Simulator configuration.

use crate::cluster::{MID_CELL, NUM_CELLS};
use crate::supervision::SupervisionConfig;
use gprs_core::{CellConfig, CellGraph, ModelError, Scenario};

/// How the radio link serves the BSC buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RadioModel {
    /// Aggregate processor sharing: the head packet completes at rate
    /// `min(N − n, 8k)·μ_service` — the same abstraction level as the
    /// Markov model. Fast; use for long calibration runs.
    #[default]
    ProcessorSharing,
    /// Per-20 ms TDMA radio-block scheduling with the multislot caps
    /// (≤ 8 slots per packet, one packet per slot per block). Packets
    /// are segmented into blocks; this is the paper's "more detailed"
    /// wireless-link model.
    TdmaBlocks,
}

/// TCP behaviour of the simulated sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Whether TCP windowing is simulated at all. With `false`, sources
    /// inject packets straight into the BSC (pure IPP traffic — what the
    /// Markov model with `η = 1` describes).
    pub enabled: bool,
    /// Initial slow-start threshold, packets.
    pub initial_ssthresh: f64,
    /// Receiver window (max in-flight packets).
    pub receiver_window: u32,
    /// Minimum retransmission timeout, seconds.
    pub min_rto: f64,
    /// Maximum retransmission timeout, seconds.
    pub max_rto: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            enabled: true,
            initial_ssthresh: 16.0,
            receiver_window: 32,
            min_rto: 0.5,
            max_rto: 60.0,
        }
    }
}

/// Full simulator configuration: one [`CellConfig`] **per cluster
/// cell** (the same type the Markov model uses, so experiments are
/// guaranteed to compare like with like) plus simulation-only knobs.
///
/// Cells are free to differ in *any* parameter — coding schemes,
/// buffer sizes, channel splits, traffic models, arrival rates — which
/// is exactly the generality of the analytical
/// [`ClusterModel`](gprs_core::cluster::ClusterModel), so every
/// scenario the fixed point accepts can now be cross-validated by the
/// simulator. A uniform vector (the [`SimConfig::builder`] special
/// case) reproduces the legacy shared-parameter simulator bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Cell topology: neighbour lists and handover split weights. The
    /// simulator draws every handover target from this graph. Defaults
    /// to [`CellGraph::ring7`], which reproduces the legacy 7-cell
    /// wraparound-ring simulator bit for bit.
    pub graph: CellGraph,
    /// Per-cell parameterizations, one entry per graph cell with the
    /// mid (statistics) cell at index [`MID_CELL`].
    pub cells: Vec<CellConfig>,
    /// Master RNG seed.
    pub seed: u64,
    /// Warm-up period discarded before statistics start, seconds.
    pub warmup: f64,
    /// Number of batches for batch-means confidence intervals.
    pub num_batches: usize,
    /// Duration of each batch, seconds.
    pub batch_duration: f64,
    /// One-way wired (core network + Internet) delay between the TCP
    /// source and the BSC, seconds.
    pub wired_delay: f64,
    /// Radio service fidelity.
    pub radio: RadioModel,
    /// TCP source behaviour.
    pub tcp: TcpConfig,
    /// Online PDCH re-dimensioning (capacity on demand). `None` keeps
    /// the static reservation of the Markov model.
    pub supervision: Option<SupervisionConfig>,
}

impl SimConfig {
    /// Starts a builder for a **uniform** cluster: all seven cells run
    /// `cell`. Sensible defaults (10 batches × 2000 s, 1000 s warm-up,
    /// 50 ms wired delay, processor-sharing radio, TCP enabled).
    pub fn builder(cell: CellConfig) -> SimConfigBuilder {
        Self::builder_cells(vec![cell; NUM_CELLS])
    }

    /// Starts a builder from explicit per-cell configurations (mid cell
    /// first) on the legacy [`CellGraph::ring7`] topology. The vector
    /// is validated at [`SimConfigBuilder::build`] time: exactly
    /// [`NUM_CELLS`] entries, each individually valid.
    pub fn builder_cells(cells: Vec<CellConfig>) -> SimConfigBuilder {
        Self::builder_graph(CellGraph::ring7(), cells)
    }

    /// Starts a builder from an arbitrary topology plus per-cell
    /// configurations (one per graph cell, statistics cell first). The
    /// vector is validated at [`SimConfigBuilder::build`] time: one
    /// entry per graph cell, each individually valid.
    pub fn builder_graph(graph: CellGraph, cells: Vec<CellConfig>) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                graph,
                cells,
                seed: 1,
                warmup: 1_000.0,
                num_batches: 10,
                batch_duration: 2_000.0,
                wired_delay: 0.05,
                radio: RadioModel::ProcessorSharing,
                tcp: TcpConfig::default(),
                supervision: None,
            },
            rate_override: None,
        }
    }

    /// Starts a builder from a [`Scenario`] — the same workload
    /// description the analytical lowerings (`Scenario::to_model`,
    /// `Scenario::to_cluster`) consume, so model and simulator are
    /// guaranteed to run the *same* scenario. The builder arrives
    /// preloaded with the scenario's effective cells (load scale
    /// applied, one [`CellConfig`] per cluster cell — heterogeneous
    /// scenarios lower verbatim, with no uniformity restriction) and
    /// TCP switch; run-length knobs (seed, warm-up, batches) stay with
    /// the caller.
    ///
    /// One field is model-side only: [`CellConfig::tcp_threshold`]
    /// (`η`) is the Markov model's *abstraction* of TCP feedback, which
    /// the simulator replaces with an explicit TCP implementation
    /// ([`TcpConfig`]) — the lowering carries `η` through untouched and
    /// the simulator never reads it, so per-cell `η` differences only
    /// affect the analytical side of a cross-validation.
    ///
    /// # Errors
    ///
    /// [`ModelError::Config`] if the scenario's effective cells fail
    /// validation (e.g. a load scale pushed an arrival rate out of
    /// range).
    pub fn for_scenario(scenario: &Scenario) -> Result<SimConfigBuilder, ModelError> {
        let cells = scenario.effective_cells()?;
        let mut builder = SimConfig::builder_graph(scenario.graph().clone(), cells);
        if !scenario.tcp_enabled() {
            builder = builder.without_tcp();
        }
        Ok(builder)
    }

    /// Total simulated horizon: warm-up plus all batches.
    pub fn horizon(&self) -> f64 {
        self.warmup + self.num_batches as f64 * self.batch_duration
    }

    /// Number of cells in the topology (and hence in
    /// [`SimConfig::cells`]).
    pub fn num_cells(&self) -> usize {
        self.graph.num_cells()
    }

    /// The configuration of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= self.num_cells()`.
    pub fn cell(&self, cell: usize) -> &CellConfig {
        assert!(cell < self.num_cells(), "cell {cell} out of range");
        &self.cells[cell]
    }

    /// Whether all cells are identical — the legacy shared-parameter
    /// special case.
    pub fn is_uniform(&self) -> bool {
        self.cells[1..].iter().all(|c| *c == self.cells[MID_CELL])
    }

    /// The combined call arrival rate of `cell` (calls/s).
    ///
    /// # Panics
    ///
    /// Panics if `cell >= self.num_cells()`.
    pub fn arrival_rate_in(&self, cell: usize) -> f64 {
        self.cell(cell).call_arrival_rate
    }

    /// New-GSM-call arrival rate in `cell`,
    /// `λ_GSM = (1 − f_GPRS)·λ_cell`.
    pub fn gsm_arrival_rate_in(&self, cell: usize) -> f64 {
        self.cell(cell).gsm_arrival_rate()
    }

    /// New-GPRS-session arrival rate in `cell`, `λ_GPRS = f_GPRS·λ_cell`.
    pub fn gprs_arrival_rate_in(&self, cell: usize) -> f64 {
        self.cell(cell).gprs_arrival_rate()
    }

    /// Asserts the structural invariants the simulator relies on: one
    /// cell configuration per graph cell, each individually valid
    /// (which guarantees, among others, `buffer_capacity >= 1` — the
    /// supervision occupancy divisor — and
    /// `reserved_pdchs <= total_channels`).
    ///
    /// [`SimConfigBuilder::build`] runs this; [`GprsSimulator::new`]
    /// (`crate::simulator::GprsSimulator::new`) re-runs it so
    /// hand-constructed configurations fail fast with a clear message
    /// instead of underflowing mid-run.
    ///
    /// # Panics
    ///
    /// Panics with the first violated constraint.
    pub fn assert_valid(&self) {
        assert_eq!(
            self.cells.len(),
            self.num_cells(),
            "need one cell config per cluster cell"
        );
        for (i, cell) in self.cells.iter().enumerate() {
            if let Err(e) = cell.validate() {
                panic!("cell {i}: {e}");
            }
        }
        if let Some(sup) = &self.supervision {
            sup.validate();
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
    /// Pending per-cell arrival-rate override, applied to the cells at
    /// [`SimConfigBuilder::build`] time (last call wins).
    rate_override: Option<Vec<f64>>,
}

impl SimConfigBuilder {
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the warm-up duration (seconds).
    pub fn warmup(mut self, secs: f64) -> Self {
        self.config.warmup = secs;
        self
    }

    /// Sets batch count and per-batch duration (seconds).
    pub fn batches(mut self, count: usize, duration: f64) -> Self {
        self.config.num_batches = count;
        self.config.batch_duration = duration;
        self
    }

    /// Sets the one-way wired delay (seconds).
    pub fn wired_delay(mut self, secs: f64) -> Self {
        self.config.wired_delay = secs;
        self
    }

    /// Selects the radio service fidelity.
    pub fn radio(mut self, radio: RadioModel) -> Self {
        self.config.radio = radio;
        self
    }

    /// Sets the TCP source behaviour.
    pub fn tcp(mut self, tcp: TcpConfig) -> Self {
        self.config.tcp = tcp;
        self
    }

    /// Disables TCP windowing (pure IPP sources).
    pub fn without_tcp(mut self) -> Self {
        self.config.tcp.enabled = false;
        self
    }

    /// Enables online load supervision (dynamic PDCH re-dimensioning).
    pub fn supervision(mut self, sup: SupervisionConfig) -> Self {
        self.config.supervision = Some(sup);
        self
    }

    /// Sets per-cell combined call arrival rates (one per cluster cell,
    /// mid cell first), overriding each cell's configured rate.
    ///
    /// [`SimConfigBuilder::cell_arrival_rates`] and
    /// [`SimConfigBuilder::hot_spot`] both assign the *entire* per-cell
    /// rate vector: **the last call wins**, replacing whatever an
    /// earlier call of either method set (they do not merge). Cells'
    /// other parameters are untouched.
    pub fn cell_arrival_rates(mut self, rates: Vec<f64>) -> Self {
        self.rate_override = Some(rates);
        self
    }

    /// Hot-spot convenience: the mid cell runs at `mid_rate` calls/s,
    /// the six ring cells keep their configured arrival rates.
    ///
    /// Like [`SimConfigBuilder::cell_arrival_rates`], this assigns the
    /// *entire* per-cell rate vector — **the last call wins**: a
    /// `hot_spot` after `cell_arrival_rates` rebuilds all seven rates
    /// from the configured cells (discarding the earlier vector), and a
    /// `cell_arrival_rates` after `hot_spot` replaces the hot-spot
    /// pattern wholesale.
    pub fn hot_spot(self, mid_rate: f64) -> Self {
        let mut rates: Vec<f64> = self
            .config
            .cells
            .iter()
            .map(|c| c.call_arrival_rate)
            .collect();
        rates[MID_CELL] = mid_rate;
        self.cell_arrival_rates(rates)
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if warm-up/batch parameters are not positive, fewer than
    /// two batches are requested, the cell vector is not exactly
    /// [`NUM_CELLS`] valid configurations, a rate override is
    /// malformed, or a supervision range cannot leave at least one
    /// voice channel in every cell.
    pub fn build(mut self) -> SimConfig {
        if let Some(rates) = self.rate_override.take() {
            assert_eq!(
                rates.len(),
                self.config.num_cells(),
                "need one arrival rate per cluster cell"
            );
            assert!(
                rates.iter().all(|r| r.is_finite() && *r > 0.0),
                "per-cell arrival rates must be finite and positive"
            );
            assert_eq!(
                self.config.cells.len(),
                self.config.num_cells(),
                "need one cell config per cluster cell"
            );
            for (cell, rate) in self.config.cells.iter_mut().zip(rates) {
                cell.call_arrival_rate = rate;
            }
        }
        let c = &self.config;
        assert!(c.warmup >= 0.0, "warmup must be >= 0");
        assert!(c.num_batches >= 2, "need at least two batches for CIs");
        assert!(c.batch_duration > 0.0, "batch duration must be positive");
        assert!(
            c.wired_delay >= 0.0 && c.wired_delay.is_finite(),
            "wired delay must be finite and >= 0"
        );
        c.assert_valid();
        if let Some(sup) = &c.supervision {
            for (i, cell) in c.cells.iter().enumerate() {
                assert!(
                    sup.max_reserved < cell.total_channels,
                    "supervision must leave at least one voice channel: max_reserved {} \
                     vs cell {i} total_channels {}",
                    sup.max_reserved,
                    cell.total_channels
                );
            }
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::CodingScheme;
    use gprs_traffic::TrafficModel;

    fn cell() -> CellConfig {
        CellConfig::builder()
            .traffic_model(TrafficModel::Model3)
            .call_arrival_rate(0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_and_horizon() {
        let cfg = SimConfig::builder(cell()).build();
        assert_eq!(cfg.num_batches, 10);
        assert!((cfg.horizon() - (1_000.0 + 10.0 * 2_000.0)).abs() < 1e-9);
        assert!(cfg.tcp.enabled);
        assert_eq!(cfg.radio, RadioModel::ProcessorSharing);
        assert_eq!(cfg.cells.len(), NUM_CELLS);
        assert!(cfg.is_uniform());
    }

    #[test]
    fn builder_setters() {
        let cfg = SimConfig::builder(cell())
            .seed(99)
            .warmup(10.0)
            .batches(4, 100.0)
            .wired_delay(0.02)
            .radio(RadioModel::TdmaBlocks)
            .without_tcp()
            .build();
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.num_batches, 4);
        assert!(!cfg.tcp.enabled);
        assert_eq!(cfg.radio, RadioModel::TdmaBlocks);
    }

    #[test]
    #[should_panic(expected = "at least two batches")]
    fn one_batch_rejected() {
        let _ = SimConfig::builder(cell()).batches(1, 100.0).build();
    }

    #[test]
    fn homogeneous_default_uses_the_shared_rate() {
        let cfg = SimConfig::builder(cell()).build();
        assert!(cfg.is_uniform());
        for c in 0..NUM_CELLS {
            assert!((cfg.arrival_rate_in(c) - 0.5).abs() < 1e-12);
        }
        assert!((cfg.gsm_arrival_rate_in(0) - 0.95 * 0.5).abs() < 1e-12);
        assert!((cfg.gprs_arrival_rate_in(0) - 0.05 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn hot_spot_overrides_only_the_mid_cell() {
        let cfg = SimConfig::builder(cell()).hot_spot(1.2).build();
        assert!((cfg.arrival_rate_in(MID_CELL) - 1.2).abs() < 1e-12);
        for c in 1..NUM_CELLS {
            assert!((cfg.arrival_rate_in(c) - 0.5).abs() < 1e-12, "cell {c}");
        }
    }

    #[test]
    fn per_cell_rate_setters_are_last_call_wins() {
        // hot_spot after cell_arrival_rates: the earlier vector is
        // discarded wholesale, every ring cell reverts to the base rate.
        let cfg = SimConfig::builder(cell())
            .cell_arrival_rates(vec![9.0; NUM_CELLS])
            .hot_spot(1.2)
            .build();
        assert!((cfg.arrival_rate_in(MID_CELL) - 1.2).abs() < 1e-12);
        for c in 1..NUM_CELLS {
            assert!((cfg.arrival_rate_in(c) - 0.5).abs() < 1e-12, "cell {c}");
        }

        // cell_arrival_rates after hot_spot: the hot-spot pattern is
        // replaced, not merged.
        let cfg = SimConfig::builder(cell())
            .hot_spot(1.2)
            .cell_arrival_rates(vec![0.7; NUM_CELLS])
            .build();
        for c in 0..NUM_CELLS {
            assert!((cfg.arrival_rate_in(c) - 0.7).abs() < 1e-12, "cell {c}");
        }
    }

    #[test]
    fn builder_cells_accepts_full_heterogeneity() {
        let mut cells = vec![cell(); NUM_CELLS];
        cells[0].coding_scheme = CodingScheme::Cs4;
        cells[2].buffer_capacity = 40;
        cells[3].total_channels = 16;
        cells[4].max_gprs_sessions = 5;
        cells[5].call_arrival_rate = 0.9;
        let cfg = SimConfig::builder_cells(cells.clone()).build();
        assert!(!cfg.is_uniform());
        assert_eq!(cfg.cells, cells);
        assert_eq!(cfg.cell(0).coding_scheme, CodingScheme::Cs4);
        assert_eq!(cfg.cell(2).buffer_capacity, 40);
        assert!((cfg.arrival_rate_in(5) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn scenario_lowering_matches_hand_wiring() {
        use gprs_core::Scenario;
        // Homogeneous: a uniform cell vector, TCP on — exactly the
        // legacy builder output.
        let s = Scenario::homogeneous(cell()).unwrap();
        let lowered = SimConfig::for_scenario(&s).unwrap().seed(7).build();
        let legacy = SimConfig::builder(cell()).seed(7).build();
        assert_eq!(lowered, legacy);

        // Hot spot: per-cell rates match the hot_spot() convenience.
        let s = Scenario::hot_spot(cell(), 1.2).unwrap();
        let lowered = SimConfig::for_scenario(&s).unwrap().seed(7).build();
        let legacy = SimConfig::builder(cell()).seed(7).hot_spot(1.2).build();
        assert_eq!(
            lowered.cells, legacy.cells,
            "scenario lowering must reproduce the hand-wired rate vector"
        );
        assert!((lowered.arrival_rate_in(MID_CELL) - 1.2).abs() < 1e-12);

        // The TCP switch crosses the layer.
        let s = Scenario::homogeneous(cell()).unwrap().without_tcp();
        let lowered = SimConfig::for_scenario(&s).unwrap().build();
        assert!(!lowered.tcp.enabled);

        // Load scale applies to every cell.
        let s = Scenario::hot_spot(cell(), 1.2)
            .unwrap()
            .with_load_scale(2.0)
            .unwrap();
        let lowered = SimConfig::for_scenario(&s).unwrap().build();
        assert!((lowered.arrival_rate_in(MID_CELL) - 2.4).abs() < 1e-12);
        assert!((lowered.arrival_rate_in(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_scenarios_lower_verbatim() {
        use gprs_core::Scenario;
        // Mixed buffers, coding schemes and channel splits — the
        // scenarios the analytical cluster was always able to represent
        // now survive the simulator lowering unchanged.
        let mut cells = vec![cell(); NUM_CELLS];
        cells[1].buffer_capacity = 60;
        cells[2].coding_scheme = CodingScheme::Cs1;
        cells[3].total_channels = 24;
        let s = Scenario::from_cells("mixed", cells).unwrap();
        let lowered = SimConfig::for_scenario(&s).unwrap().build();
        assert_eq!(lowered.cells, s.effective_cells().unwrap());
        assert!(!lowered.is_uniform());
    }

    #[test]
    #[should_panic(expected = "one arrival rate per cluster cell")]
    fn wrong_rate_count_rejected() {
        let _ = SimConfig::builder(cell())
            .cell_arrival_rates(vec![0.5; 3])
            .build();
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_rate_rejected() {
        let mut rates = vec![0.5; NUM_CELLS];
        rates[3] = 0.0;
        let _ = SimConfig::builder(cell()).cell_arrival_rates(rates).build();
    }

    #[test]
    #[should_panic(expected = "one cell config per cluster cell")]
    fn wrong_cell_count_rejected() {
        let _ = SimConfig::builder_cells(vec![cell(); 3]).build();
    }

    #[test]
    #[should_panic(expected = "cell 4:")]
    fn invalid_cell_is_attributed() {
        let mut cells = vec![cell(); NUM_CELLS];
        cells[4].buffer_capacity = 0;
        let _ = SimConfig::builder_cells(cells).build();
    }

    #[test]
    #[should_panic(expected = "at least one voice channel")]
    fn supervision_must_fit_every_cell() {
        // The range fits the base cells but not the shrunken cell 3 —
        // the per-cell validation must catch it.
        let mut cells = vec![cell(); NUM_CELLS];
        cells[3].total_channels = 4;
        cells[3].reserved_pdchs = 1;
        let sup = SupervisionConfig {
            max_reserved: 6,
            ..SupervisionConfig::default()
        };
        let _ = SimConfig::builder_cells(cells).supervision(sup).build();
    }
}
