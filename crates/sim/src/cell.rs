//! Per-cell simulation state: voice calls, GPRS sessions, and the BSC
//! buffer.

use crate::packet::{Packet, SessionId};
use gprs_des::EventId;
use std::collections::VecDeque;

/// Mutable state of one cell.
#[derive(Debug)]
pub struct Cell {
    /// Active GSM voice calls `n`.
    pub voice_calls: usize,
    /// Ids of GPRS sessions currently resident (`m = gprs_sessions.len()`).
    pub gprs_sessions: std::collections::HashSet<SessionId>,
    /// The BSC FIFO buffer (bounded by `K` externally).
    pub buffer: VecDeque<Packet>,
    /// Pending service-completion event (processor-sharing radio model).
    pub service_event: Option<EventId>,
    /// Whether a TDMA radio-block tick is scheduled (TDMA radio model).
    pub tick_scheduled: bool,
}

impl Cell {
    /// An empty cell.
    pub fn new() -> Self {
        Cell {
            voice_calls: 0,
            gprs_sessions: std::collections::HashSet::new(),
            buffer: VecDeque::new(),
            service_event: None,
            tick_scheduled: false,
        }
    }

    /// Number of active GPRS sessions `m`.
    pub fn num_sessions(&self) -> usize {
        self.gprs_sessions.len()
    }

    /// Buffer occupancy `k`.
    pub fn queue_len(&self) -> usize {
        self.buffer.len()
    }

    /// PDCHs busy with data right now: `min(N − n, 8k)` (the same
    /// formula as the Markov model; the TDMA model additionally caps by
    /// actual block assignment, but the *capacity* formula is shared).
    pub fn busy_pdchs(&self, total_channels: usize) -> usize {
        (total_channels - self.voice_calls).min(8 * self.queue_len())
    }

    /// Removes all buffered packets of `session` (handover flush).
    /// Returns how many were flushed.
    pub fn flush_session(&mut self, session: SessionId) -> usize {
        let before = self.buffer.len();
        self.buffer.retain(|p| p.session != session);
        before - self.buffer.len()
    }
}

impl Default for Cell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(session: SessionId, seq: u64) -> Packet {
        Packet {
            session,
            seq,
            call_epoch: 0,
            cell: 0,
            bsc_arrival: 0.0,
            blocks_remaining: 15,
        }
    }

    #[test]
    fn busy_pdch_formula_matches_model() {
        let mut c = Cell::new();
        assert_eq!(c.busy_pdchs(20), 0);
        c.buffer.push_back(packet(1, 1));
        assert_eq!(c.busy_pdchs(20), 8); // one packet: multislot cap 8
        c.voice_calls = 19;
        assert_eq!(c.busy_pdchs(20), 1);
        c.buffer.push_back(packet(1, 2));
        c.buffer.push_back(packet(1, 3));
        c.voice_calls = 0;
        assert_eq!(c.busy_pdchs(20), 20); // 3 packets: min(20, 24)
    }

    #[test]
    fn flush_session_removes_only_that_session() {
        let mut c = Cell::new();
        c.buffer.push_back(packet(1, 1));
        c.buffer.push_back(packet(2, 1));
        c.buffer.push_back(packet(1, 2));
        assert_eq!(c.flush_session(1), 2);
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.buffer[0].session, 2);
    }
}
