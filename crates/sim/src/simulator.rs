//! The network-level GPRS simulator: seven cells, explicit handovers,
//! TCP sources, and the BSC/radio data path.
//!
//! # Architecture
//!
//! The simulator owns a [`gprs_des::Simulation`] event loop and per-cell
//! state ([`crate::cell::Cell`]). GPRS sessions are driven by three
//! cooperating machines:
//!
//! * the 3GPP *application* (packet calls / reading times, sampled by
//!   `gprs-traffic`), which emits packets into the TCP send buffer;
//! * the *TCP sender/receiver* pair (`crate::tcp`), a pure state machine
//!   whose outputs (transmissions, RTO deadline) the simulator turns
//!   into events;
//! * the *radio path*: wired delay → BSC FIFO buffer (capacity `K`,
//!   drops when full) → PDCH service, either processor-sharing or
//!   20 ms TDMA radio blocks.
//!
//! Every cell runs its **own** [`gprs_core::CellConfig`]
//! ([`SimConfig::cells`]): coding scheme, buffer capacity, channel
//! split, session cap, traffic and mobility parameters are all read
//! through the event's cell index, so fully heterogeneous clusters —
//! the scenarios the analytical
//! [`ClusterModel`](gprs_core::cluster::ClusterModel) fixed point was
//! built for — simulate end to end. A uniform cell vector reproduces
//! the legacy shared-parameter simulator bit for bit.
//!
//! Statistics are collected in the mid cell only, with warm-up deletion
//! and batch-means confidence intervals, as in the paper.

use crate::cell::Cell;
use crate::cluster::MID_CELL;
use crate::config::{RadioModel, SimConfig};
use crate::events::Event;
use crate::packet::{blocks_per_packet, Packet, SessionId};
use crate::results::SimResults;
use crate::supervision::LoadSupervisor;
use crate::tcp::{Seq, TcpReceiver, TcpSender};
use gprs_des::rng::RngStreams;
use gprs_des::stats::{Tally, TimeWeighted};
use gprs_des::{ConfidenceInterval, EventId, SimTime, Simulation};
use gprs_traffic::distributions::{exp_mean, geometric_min1};
use gprs_traffic::params::PACKET_SIZE_BITS;
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// One in-progress packet call (document download).
#[derive(Debug)]
struct Transfer {
    total_packets: u64,
    emitted: u64,
    /// Packets resolved (delivered or lost) — used to detect call
    /// completion when TCP is disabled.
    resolved: u64,
    sender: TcpSender,
    receiver: TcpReceiver,
    rto_event: Option<EventId>,
}

// The size gap between the variants is deliberate: sessions are few
// (bounded by 7·M) and phase flips are frequent, so inline storage beats
// boxing the transfer state.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SessionPhase {
    InCall(Transfer),
    Reading,
}

#[derive(Debug)]
struct Session {
    cell: usize,
    calls_remaining: u64,
    call_epoch: u64,
    phase: SessionPhase,
}

/// Per-batch raw measures.
#[derive(Debug, Clone, Copy, Default)]
struct BatchRow {
    cdt: f64,
    cvt: f64,
    ags: f64,
    plp: f64,
    qd: f64,
    atu_kbps: f64,
    gsm_block: f64,
    gprs_block: f64,
    ho_in_rate: f64,
    reserved: f64,
}

#[derive(Debug)]
struct Stats {
    collecting: bool,
    batch_start: f64,
    busy_pdchs: TimeWeighted,
    voice: TimeWeighted,
    sessions: TimeWeighted,
    bsc_arrivals: u64,
    bsc_drops: u64,
    delivered: u64,
    qd: Tally,
    gsm_attempts: u64,
    gsm_blocked: u64,
    gprs_attempts: u64,
    gprs_blocked: u64,
    gprs_handover_in: u64,
    batches: Vec<BatchRow>,
    tcp_retx: u64,
    reserved: TimeWeighted,
    reconfigurations: u64,
}

impl Stats {
    fn new() -> Self {
        Stats {
            collecting: false,
            batch_start: 0.0,
            busy_pdchs: TimeWeighted::new(SimTime::ZERO, 0.0),
            voice: TimeWeighted::new(SimTime::ZERO, 0.0),
            sessions: TimeWeighted::new(SimTime::ZERO, 0.0),
            bsc_arrivals: 0,
            bsc_drops: 0,
            delivered: 0,
            qd: Tally::new(),
            gsm_attempts: 0,
            gsm_blocked: 0,
            gprs_attempts: 0,
            gprs_blocked: 0,
            gprs_handover_in: 0,
            batches: Vec::new(),
            tcp_retx: 0,
            reserved: TimeWeighted::new(SimTime::ZERO, 0.0),
            reconfigurations: 0,
        }
    }

    fn restart_counters(&mut self, now: SimTime) {
        self.batch_start = now.as_secs();
        self.busy_pdchs.restart(now);
        self.voice.restart(now);
        self.sessions.restart(now);
        self.bsc_arrivals = 0;
        self.bsc_drops = 0;
        self.delivered = 0;
        self.qd.reset();
        self.gsm_attempts = 0;
        self.gsm_blocked = 0;
        self.gprs_attempts = 0;
        self.gprs_blocked = 0;
        self.gprs_handover_in = 0;
        self.reserved.restart(now);
    }

    fn close_batch(&mut self, now: SimTime) {
        let dur = now.as_secs() - self.batch_start;
        let ags = self.sessions.average(now);
        let throughput_pkts = self.delivered as f64 / dur;
        let row = BatchRow {
            cdt: self.busy_pdchs.average(now),
            cvt: self.voice.average(now),
            ags,
            plp: if self.bsc_arrivals > 0 {
                self.bsc_drops as f64 / self.bsc_arrivals as f64
            } else {
                0.0
            },
            qd: self.qd.mean(),
            atu_kbps: if ags > 0.0 {
                throughput_pkts * PACKET_SIZE_BITS / 1000.0 / ags
            } else {
                0.0
            },
            gsm_block: if self.gsm_attempts > 0 {
                self.gsm_blocked as f64 / self.gsm_attempts as f64
            } else {
                0.0
            },
            gprs_block: if self.gprs_attempts > 0 {
                self.gprs_blocked as f64 / self.gprs_attempts as f64
            } else {
                0.0
            },
            ho_in_rate: self.gprs_handover_in as f64 / dur,
            reserved: self.reserved.average(now),
        };
        self.batches.push(row);
        self.restart_counters(now);
    }
}

/// The simulator. Construct with [`GprsSimulator::new`], execute with
/// [`run`](GprsSimulator::run).
#[derive(Debug)]
pub struct GprsSimulator {
    cfg: SimConfig,
    sim: Simulation<Event>,
    cells: Vec<Cell>,
    sessions: HashMap<SessionId, Session>,
    next_session_id: SessionId,
    stats: Stats,
    /// Per-cell radio blocks per packet (from each cell's coding
    /// scheme); indexed like `cells`.
    blocks_per_pkt: Vec<u32>,
    done: bool,
    /// Per-cell voice admission cap `N − N_GPRS(t)`; static runs keep it
    /// at the configured split, supervision moves it.
    voice_caps: Vec<usize>,
    /// Per-cell load supervisors (when capacity on demand is enabled).
    supervisors: Option<Vec<LoadSupervisor>>,
    // RNG streams: decorrelated so experiments can vary one source
    // class without perturbing the rest.
    rng_arrivals: SmallRng,
    rng_voice: SmallRng,
    rng_traffic: SmallRng,
    rng_mobility: SmallRng,
    rng_radio: SmallRng,
}

impl GprsSimulator {
    /// Builds the simulator and schedules the initial arrival and batch
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates the structural invariants
    /// ([`SimConfig::assert_valid`]) — hand-constructed configurations
    /// fail here with a clear message instead of underflowing mid-run.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.assert_valid();
        let streams = RngStreams::new(cfg.seed);
        let blocks: Vec<u32> = cfg
            .cells
            .iter()
            .map(|c| blocks_per_packet(c.coding_scheme.data_rate_bps()))
            .collect();
        // Each cell's supervisor range is clamped to that cell's
        // channel count, so even a config that bypassed the builder's
        // validation can never reserve a cell's whole capacity (which
        // would underflow the voice cap below and in `on_supervision`).
        let supervisors = cfg.supervision.map(|sup| {
            cfg.cells
                .iter()
                .map(|c| LoadSupervisor::new(sup.clamped_to(c.total_channels), c.reserved_pdchs))
                .collect::<Vec<_>>()
        });
        let initial_reserved = supervisors
            .as_ref()
            .map(|sups| sups[MID_CELL].reserved())
            .unwrap_or(cfg.cells[MID_CELL].reserved_pdchs);
        let voice_caps = match &supervisors {
            Some(sups) => sups
                .iter()
                .zip(&cfg.cells)
                .map(|(s, c)| c.total_channels - s.reserved())
                .collect(),
            None => cfg.cells.iter().map(|c| c.gsm_channels()).collect(),
        };
        let mut s = GprsSimulator {
            sim: Simulation::new(),
            cells: (0..cfg.num_cells()).map(|_| Cell::new()).collect(),
            sessions: HashMap::new(),
            next_session_id: 1,
            stats: Stats::new(),
            blocks_per_pkt: blocks,
            done: false,
            voice_caps,
            supervisors,
            rng_arrivals: streams.stream(0),
            rng_voice: streams.stream(1),
            rng_traffic: streams.stream(2),
            rng_mobility: streams.stream(3),
            rng_radio: streams.stream(4),
            cfg,
        };
        s.stats.reserved.set(SimTime::ZERO, initial_reserved as f64);
        s.prime();
        s
    }

    fn prime(&mut self) {
        for cell in 0..self.cfg.num_cells() {
            let gsm_gap = 1.0 / self.cfg.gsm_arrival_rate_in(cell);
            let d = exp_mean(&mut self.rng_arrivals, gsm_gap);
            self.sim.schedule_in(d, Event::GsmArrival { cell });
            let gprs_gap = 1.0 / self.cfg.gprs_arrival_rate_in(cell);
            let d = exp_mean(&mut self.rng_arrivals, gprs_gap);
            self.sim.schedule_in(d, Event::GprsArrival { cell });
        }
        // First boundary ends the warm-up; subsequent ones close batches.
        self.sim
            .schedule_in(self.cfg.warmup.max(1e-9), Event::BatchBoundary);
        if let Some(sup) = &self.cfg.supervision {
            self.sim.schedule_in(sup.epoch, Event::Supervision);
        }
    }

    /// Runs to completion (all batches collected) and returns the
    /// results.
    pub fn run(mut self) -> SimResults {
        while !self.done {
            let Some((now, ev)) = self.sim.next_event() else {
                break;
            };
            self.handle(now, ev);
            self.refresh_mid_signals(now);
        }
        self.finish()
    }

    fn refresh_mid_signals(&mut self, now: SimTime) {
        let n_total = self.cfg.cells[MID_CELL].total_channels;
        let mid = &self.cells[MID_CELL];
        self.stats
            .busy_pdchs
            .set(now, mid.busy_pdchs(n_total) as f64);
        self.stats.voice.set(now, mid.voice_calls as f64);
        self.stats.sessions.set(now, mid.num_sessions() as f64);
    }

    fn finish(self) -> SimResults {
        let rows = &self.stats.batches;
        assert!(
            rows.len() >= 2,
            "simulation ended with fewer than two batches"
        );
        let pick = |f: &dyn Fn(&BatchRow) -> f64| {
            let means: Vec<f64> = rows.iter().map(f).collect();
            ConfidenceInterval::from_batch_means(&means)
        };
        SimResults {
            // Statistics are collected in the mid cell, so report its
            // arrival rate (differs from the shared one only for
            // heterogeneous clusters).
            call_arrival_rate: self.cfg.arrival_rate_in(MID_CELL),
            carried_data_traffic: pick(&|r| r.cdt),
            carried_voice_traffic: pick(&|r| r.cvt),
            packet_loss_probability: pick(&|r| r.plp),
            queueing_delay: pick(&|r| r.qd),
            throughput_per_user_kbps: pick(&|r| r.atu_kbps),
            avg_gprs_sessions: pick(&|r| r.ags),
            gsm_blocking_probability: pick(&|r| r.gsm_block),
            gprs_blocking_probability: pick(&|r| r.gprs_block),
            gprs_handover_in_rate: pick(&|r| r.ho_in_rate),
            avg_reserved_pdchs: pick(&|r| r.reserved),
            reconfigurations: self.stats.reconfigurations,
            events_processed: self.sim.events_processed(),
            simulated_time: self.sim.now().as_secs(),
            tcp_retransmissions: self.stats.tcp_retx,
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::GsmArrival { cell } => self.on_gsm_arrival(now, cell),
            Event::GsmLeave { cell } => self.on_gsm_leave(now, cell),
            Event::GprsArrival { cell } => self.on_gprs_arrival(now, cell),
            Event::SessionDwell { session } => self.on_session_dwell(now, session),
            Event::AppEmission {
                session,
                call_epoch,
            } => self.on_app_emission(now, session, call_epoch),
            Event::ReadingEnd { session } => self.on_reading_end(now, session),
            Event::BscArrival { packet } => self.on_bsc_arrival(now, packet),
            Event::ServiceComplete { cell } => self.on_service_complete(now, cell),
            Event::RadioTick { cell } => self.on_radio_tick(now, cell),
            Event::AckArrival {
                session,
                call_epoch,
                ack,
            } => self.on_ack_arrival(now, session, call_epoch, ack),
            Event::RtoTimer {
                session,
                call_epoch,
                rto_epoch,
            } => self.on_rto(now, session, call_epoch, rto_epoch),
            Event::BatchBoundary => self.on_batch_boundary(now),
            Event::Supervision => self.on_supervision(now),
        }
    }

    // --- GSM voice ----------------------------------------------------

    fn on_gsm_arrival(&mut self, _now: SimTime, cell: usize) {
        // Next arrival of the per-cell Poisson stream.
        let gap = 1.0 / self.cfg.gsm_arrival_rate_in(cell);
        let d = exp_mean(&mut self.rng_arrivals, gap);
        self.sim.schedule_in(d, Event::GsmArrival { cell });

        if cell == MID_CELL && self.stats.collecting {
            self.stats.gsm_attempts += 1;
        }
        if self.cells[cell].voice_calls < self.voice_caps[cell] {
            self.admit_voice(cell);
        } else if cell == MID_CELL && self.stats.collecting {
            self.stats.gsm_blocked += 1;
        }
    }

    fn admit_voice(&mut self, cell: usize) {
        self.cells[cell].voice_calls += 1;
        let c = &self.cfg.cells[cell];
        let leave_rate = c.gsm_completion_rate() + c.gsm_handover_rate();
        let d = exp_mean(&mut self.rng_voice, 1.0 / leave_rate);
        self.sim.schedule_in(d, Event::GsmLeave { cell });
        self.channels_changed(cell);
    }

    fn on_gsm_leave(&mut self, _now: SimTime, cell: usize) {
        debug_assert!(self.cells[cell].voice_calls > 0);
        self.cells[cell].voice_calls -= 1;
        self.channels_changed(cell);

        // Exponential race: handover with prob μ_h/(μ + μ_h), at the
        // departing cell's rates.
        let mu = self.cfg.cells[cell].gsm_completion_rate();
        let mu_h = self.cfg.cells[cell].gsm_handover_rate();
        let u: f64 = rand::Rng::gen(&mut self.rng_voice);
        if u < mu_h / (mu + mu_h) {
            let u2: f64 = rand::Rng::gen(&mut self.rng_mobility);
            let target = self
                .cfg
                .graph
                .handover_target(cell, u2)
                .expect("simulator cell indices are graph cells and u is in [0, 1]");
            if self.cells[target].voice_calls < self.voice_caps[target] {
                self.admit_voice(target);
            }
            // else: handover failure, call is dropped.
        }
    }

    // --- GPRS session lifecycle ----------------------------------------

    fn on_gprs_arrival(&mut self, now: SimTime, cell: usize) {
        let gap = 1.0 / self.cfg.gprs_arrival_rate_in(cell);
        let d = exp_mean(&mut self.rng_arrivals, gap);
        self.sim.schedule_in(d, Event::GprsArrival { cell });

        if cell == MID_CELL && self.stats.collecting {
            self.stats.gprs_attempts += 1;
        }
        if self.cells[cell].num_sessions() >= self.cfg.cells[cell].max_gprs_sessions {
            if cell == MID_CELL && self.stats.collecting {
                self.stats.gprs_blocked += 1;
            }
            return;
        }
        let id = self.next_session_id;
        self.next_session_id += 1;
        let calls = geometric_min1(
            &mut self.rng_traffic,
            self.cfg.cells[cell].traffic.packet_calls_per_session,
        );
        self.cells[cell].gprs_sessions.insert(id);
        self.sessions.insert(
            id,
            Session {
                cell,
                calls_remaining: calls,
                call_epoch: 0,
                phase: SessionPhase::Reading, // placeholder; replaced below
            },
        );
        self.start_packet_call(now, id);
        // Independent dwell clock.
        let d = exp_mean(&mut self.rng_mobility, self.cfg.cells[cell].gprs_dwell_time);
        self.sim.schedule_in(d, Event::SessionDwell { session: id });
    }

    fn start_packet_call(&mut self, now: SimTime, id: SessionId) {
        let cell = self.sessions.get(&id).expect("session exists").cell;
        let total = geometric_min1(
            &mut self.rng_traffic,
            self.cfg.cells[cell].traffic.packets_per_call,
        );
        let session = self.sessions.get_mut(&id).expect("session exists");
        session.call_epoch += 1;
        let epoch = session.call_epoch;
        session.phase = SessionPhase::InCall(Transfer {
            total_packets: total,
            emitted: 0,
            resolved: 0,
            sender: TcpSender::new(self.cfg.tcp),
            receiver: TcpReceiver::new(),
            rto_event: None,
        });
        let gap = exp_mean(
            &mut self.rng_traffic,
            self.cfg.cells[cell].traffic.packet_interarrival,
        );
        let _ = now;
        self.sim.schedule_in(
            gap,
            Event::AppEmission {
                session: id,
                call_epoch: epoch,
            },
        );
    }

    fn on_app_emission(&mut self, now: SimTime, id: SessionId, epoch: u64) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        if session.call_epoch != epoch {
            return;
        }
        let SessionPhase::InCall(transfer) = &mut session.phase else {
            return;
        };
        transfer.emitted += 1;
        let emitted = transfer.emitted;
        let more = emitted < transfer.total_packets;

        let to_send: Vec<Seq> = if self.cfg.tcp.enabled {
            transfer.sender.on_app_data(emitted, now.as_secs())
        } else {
            vec![emitted]
        };
        let cell = session.cell;
        for seq in to_send {
            self.transmit(now, id, epoch, cell, seq);
        }
        self.sync_rto(now, id);

        if more {
            let gap = exp_mean(
                &mut self.rng_traffic,
                self.cfg.cells[cell].traffic.packet_interarrival,
            );
            self.sim.schedule_in(
                gap,
                Event::AppEmission {
                    session: id,
                    call_epoch: epoch,
                },
            );
        }
    }

    fn transmit(&mut self, _now: SimTime, id: SessionId, epoch: u64, cell: usize, seq: Seq) {
        let packet = Packet {
            session: id,
            seq,
            call_epoch: epoch,
            cell,
            bsc_arrival: 0.0,
            blocks_remaining: self.blocks_per_pkt[cell],
        };
        self.sim
            .schedule_in(self.cfg.wired_delay, Event::BscArrival { packet });
    }

    fn on_reading_end(&mut self, now: SimTime, id: SessionId) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        if !matches!(session.phase, SessionPhase::Reading) {
            return;
        }
        if session.calls_remaining == 0 {
            // Session over.
            let cell = session.cell;
            self.cells[cell].gprs_sessions.remove(&id);
            self.sessions.remove(&id);
            return;
        }
        self.start_packet_call(now, id);
    }

    fn finish_call(&mut self, now: SimTime, id: SessionId) {
        let session = self.sessions.get_mut(&id).expect("session exists");
        if let SessionPhase::InCall(t) = &session.phase {
            if let Some(ev) = t.rto_event {
                self.sim.cancel(ev);
            }
        }
        session.calls_remaining = session.calls_remaining.saturating_sub(1);
        session.call_epoch += 1; // invalidate stale packet/ack/timer events
        session.phase = SessionPhase::Reading;
        let cell = session.cell;
        let d = exp_mean(
            &mut self.rng_traffic,
            self.cfg.cells[cell].traffic.reading_time,
        );
        let _ = now;
        self.sim.schedule_in(d, Event::ReadingEnd { session: id });
    }

    fn on_session_dwell(&mut self, now: SimTime, id: SessionId) {
        let Some(session) = self.sessions.get(&id) else {
            return;
        };
        let from = session.cell;
        let u: f64 = rand::Rng::gen(&mut self.rng_mobility);
        let target = self
            .cfg
            .graph
            .handover_target(from, u)
            .expect("simulator cell indices are graph cells and u is in [0, 1]");

        // Admission is judged by the *target* cell's session cap.
        if self.cells[target].num_sessions() >= self.cfg.cells[target].max_gprs_sessions {
            // Handover failure: the session is forced to terminate.
            self.drop_session(now, id);
            return;
        }
        // Move: flush old buffer; TCP will retransmit into the new cell.
        let flushed = self.cells[from].flush_session(id);
        if flushed > 0 {
            self.queue_changed(now, from);
        }
        self.cells[from].gprs_sessions.remove(&id);
        self.cells[target].gprs_sessions.insert(id);
        let session = self.sessions.get_mut(&id).expect("checked above");
        session.cell = target;
        if target == MID_CELL && self.stats.collecting {
            self.stats.gprs_handover_in += 1;
        }
        // Next dwell period, clocked by the new cell's mobility.
        let d = exp_mean(
            &mut self.rng_mobility,
            self.cfg.cells[target].gprs_dwell_time,
        );
        self.sim.schedule_in(d, Event::SessionDwell { session: id });
    }

    fn drop_session(&mut self, now: SimTime, id: SessionId) {
        let Some(session) = self.sessions.get(&id) else {
            return;
        };
        let cell = session.cell;
        if let SessionPhase::InCall(t) = &session.phase {
            if let Some(ev) = t.rto_event {
                self.sim.cancel(ev);
            }
        }
        let flushed = self.cells[cell].flush_session(id);
        if flushed > 0 {
            self.queue_changed(now, cell);
        }
        self.cells[cell].gprs_sessions.remove(&id);
        self.sessions.remove(&id);
    }

    // --- Data path ------------------------------------------------------

    fn on_bsc_arrival(&mut self, now: SimTime, mut packet: Packet) {
        let Some(session) = self.sessions.get_mut(&packet.session) else {
            return; // stale: session gone
        };
        if session.call_epoch != packet.call_epoch {
            return; // stale: belongs to a finished call
        }
        if session.cell != packet.cell {
            // Mis-routed after handover: the SGSN would re-route; here
            // the copy is simply discarded. Without TCP the packet is
            // lost for good — account for it so the call can complete.
            if !self.cfg.tcp.enabled {
                self.resolve_packet_no_tcp(now, packet.session);
            }
            return;
        }
        let cell = packet.cell;
        if cell == MID_CELL && self.stats.collecting {
            self.stats.bsc_arrivals += 1;
        }
        if self.cells[cell].queue_len() >= self.cfg.cells[cell].buffer_capacity {
            // Buffer overflow: packet lost.
            if cell == MID_CELL && self.stats.collecting {
                self.stats.bsc_drops += 1;
            }
            if !self.cfg.tcp.enabled {
                self.resolve_packet_no_tcp(now, packet.session);
            }
            return;
        }
        packet.bsc_arrival = now.as_secs();
        self.cells[cell].buffer.push_back(packet);
        self.queue_changed(now, cell);
    }

    /// Processor-sharing model: head-of-line completion.
    fn on_service_complete(&mut self, now: SimTime, cell: usize) {
        self.cells[cell].service_event = None;
        let Some(packet) = self.cells[cell].buffer.pop_front() else {
            return; // stale (queue was flushed)
        };
        self.deliver(now, packet);
        self.queue_changed(now, cell);
    }

    /// TDMA model: one 20 ms radio block elapsed.
    fn on_radio_tick(&mut self, now: SimTime, cell: usize) {
        let bler = self.cfg.cells[cell].block_error_rate;
        let total_channels = self.cfg.cells[cell].total_channels;
        let cell_state = &mut self.cells[cell];
        let rng = &mut self.rng_radio;
        cell_state.tick_scheduled = false;
        let mut channels = total_channels - cell_state.voice_calls;
        // Head-first fair assignment: up to 8 slots per packet. Each
        // transmitted block errs independently with probability BLER and
        // is then retransmitted by the RLC ARQ in a later radio block
        // (it stays in `blocks_remaining`).
        for p in cell_state.buffer.iter_mut() {
            if channels == 0 {
                break;
            }
            let take = channels.min(8).min(p.blocks_remaining as usize);
            let delivered = if bler == 0.0 {
                take as u32
            } else {
                (0..take)
                    .filter(|_| rand::Rng::gen::<f64>(rng) >= bler)
                    .count() as u32
            };
            p.blocks_remaining -= delivered;
            channels -= take;
        }
        // Deliver finished packets (preserving FIFO order).
        let mut delivered = Vec::new();
        self.cells[cell].buffer.retain(|p| {
            if p.blocks_remaining == 0 {
                delivered.push(*p);
                false
            } else {
                true
            }
        });
        for p in delivered {
            self.deliver(now, p);
        }
        self.queue_changed(now, cell);
    }

    fn deliver(&mut self, now: SimTime, packet: Packet) {
        if packet.cell == MID_CELL && self.stats.collecting {
            self.stats.delivered += 1;
            self.stats.qd.record(now.as_secs() - packet.bsc_arrival);
        }
        let Some(session) = self.sessions.get_mut(&packet.session) else {
            return;
        };
        if session.call_epoch != packet.call_epoch {
            return;
        }
        let SessionPhase::InCall(transfer) = &mut session.phase else {
            return;
        };
        let ack = transfer.receiver.on_packet(packet.seq);
        if self.cfg.tcp.enabled {
            self.sim.schedule_in(
                self.cfg.wired_delay,
                Event::AckArrival {
                    session: packet.session,
                    call_epoch: packet.call_epoch,
                    ack,
                },
            );
        } else {
            self.resolve_packet_no_tcp(now, packet.session);
        }
    }

    /// Without TCP, a packet is "resolved" when delivered or lost; the
    /// call completes when every emitted packet is resolved.
    fn resolve_packet_no_tcp(&mut self, now: SimTime, id: SessionId) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        let SessionPhase::InCall(transfer) = &mut session.phase else {
            return;
        };
        transfer.resolved += 1;
        if transfer.resolved >= transfer.total_packets && transfer.emitted >= transfer.total_packets
        {
            self.finish_call(now, id);
        }
    }

    fn on_ack_arrival(&mut self, now: SimTime, id: SessionId, epoch: u64, ack: Seq) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        if session.call_epoch != epoch {
            return;
        }
        let SessionPhase::InCall(transfer) = &mut session.phase else {
            return;
        };
        let retx_before = transfer.sender.retransmissions();
        let to_send = transfer.sender.on_ack(ack, now.as_secs());
        let retx_after = transfer.sender.retransmissions();
        let complete = transfer.sender.all_acked() && transfer.emitted >= transfer.total_packets;
        let cell = session.cell;
        if cell == MID_CELL && self.stats.collecting {
            self.stats.tcp_retx += retx_after - retx_before;
        }
        for seq in to_send {
            self.transmit(now, id, epoch, cell, seq);
        }
        self.sync_rto(now, id);
        if complete {
            self.finish_call(now, id);
        }
    }

    fn on_rto(&mut self, now: SimTime, id: SessionId, epoch: u64, rto_epoch: u64) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        if session.call_epoch != epoch {
            return;
        }
        let SessionPhase::InCall(transfer) = &mut session.phase else {
            return;
        };
        if transfer.sender.rto_epoch() != rto_epoch || !transfer.sender.rto_armed() {
            return; // stale timer
        }
        let to_send = transfer.sender.on_rto(now.as_secs());
        let cell = session.cell;
        if cell == MID_CELL && self.stats.collecting {
            self.stats.tcp_retx += to_send.len() as u64;
        }
        for seq in to_send {
            self.transmit(now, id, epoch, cell, seq);
        }
        self.sync_rto(now, id);
    }

    /// Re-arms the RTO timer event to match the sender's current state.
    fn sync_rto(&mut self, _now: SimTime, id: SessionId) {
        if !self.cfg.tcp.enabled {
            return;
        }
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        let epoch = session.call_epoch;
        let SessionPhase::InCall(transfer) = &mut session.phase else {
            return;
        };
        if let Some(ev) = transfer.rto_event.take() {
            self.sim.cancel(ev);
        }
        if transfer.sender.rto_armed() {
            let delay = transfer.sender.rto();
            let rto_epoch = transfer.sender.rto_epoch();
            let ev = self.sim.schedule_in(
                delay,
                Event::RtoTimer {
                    session: id,
                    call_epoch: epoch,
                    rto_epoch,
                },
            );
            // Re-borrow to store the event id.
            if let Some(session) = self.sessions.get_mut(&id) {
                if let SessionPhase::InCall(t) = &mut session.phase {
                    t.rto_event = Some(ev);
                }
            }
        }
    }

    // --- Radio bookkeeping ----------------------------------------------

    /// Voice occupancy changed: the PDCH capacity moved.
    fn channels_changed(&mut self, cell: usize) {
        let now = self.sim.now();
        self.queue_changed(now, cell);
    }

    /// Queue length or capacity changed: reschedule service.
    fn queue_changed(&mut self, now: SimTime, cell: usize) {
        match self.cfg.radio {
            RadioModel::ProcessorSharing => {
                if let Some(ev) = self.cells[cell].service_event.take() {
                    self.sim.cancel(ev);
                }
                let k = self.cells[cell].queue_len();
                let c = self.cells[cell].busy_pdchs(self.cfg.cells[cell].total_channels);
                if k > 0 && c > 0 {
                    let rate = c as f64 * self.cfg.cells[cell].packet_service_rate();
                    let d = exp_mean(&mut self.rng_radio, 1.0 / rate);
                    let ev = self.sim.schedule_in(d, Event::ServiceComplete { cell });
                    self.cells[cell].service_event = Some(ev);
                }
            }
            RadioModel::TdmaBlocks => {
                if self.cells[cell].queue_len() > 0 && !self.cells[cell].tick_scheduled {
                    self.sim
                        .schedule_in(crate::RADIO_BLOCK_SECONDS, Event::RadioTick { cell });
                    self.cells[cell].tick_scheduled = true;
                }
            }
        }
        let _ = now;
    }

    // --- Statistics ------------------------------------------------------

    fn on_batch_boundary(&mut self, now: SimTime) {
        if !self.stats.collecting {
            // Warm-up over.
            self.stats.collecting = true;
            self.stats.restart_counters(now);
        } else {
            self.stats.close_batch(now);
            if self.stats.batches.len() >= self.cfg.num_batches {
                self.done = true;
                return;
            }
        }
        self.sim
            .schedule_in(self.cfg.batch_duration, Event::BatchBoundary);
    }

    // --- Load supervision ------------------------------------------------

    fn on_supervision(&mut self, now: SimTime) {
        let Some(sup_cfg) = self.cfg.supervision else {
            return; // stale event after a config without supervision
        };
        for cell in 0..self.cfg.num_cells() {
            // Occupancy is measured against the *owning* cell's buffer
            // capacity (>= 1 by build-time validation).
            let k = self.cfg.cells[cell].buffer_capacity as f64;
            let occupancy = self.cells[cell].queue_len() as f64 / k;
            let supervisors = self
                .supervisors
                .as_mut()
                .expect("supervision config implies supervisors");
            let adjusted = supervisors[cell].observe(occupancy);
            if adjusted.is_some() {
                let reserved = supervisors[cell].reserved();
                // Ongoing calls above a shrunken cap keep their channels;
                // only new admissions see the new split.
                self.voice_caps[cell] = self.cfg.cells[cell].total_channels - reserved;
                if cell == MID_CELL {
                    self.stats.reserved.set(now, reserved as f64);
                    if self.stats.collecting {
                        self.stats.reconfigurations += 1;
                    }
                }
            }
        }
        self.sim.schedule_in(sup_cfg.epoch, Event::Supervision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NUM_CELLS;
    use gprs_core::CellConfig;
    use gprs_traffic::TrafficModel;

    fn small_cell(rate: f64) -> CellConfig {
        CellConfig::builder()
            .traffic_model(TrafficModel::Model3)
            .call_arrival_rate(rate)
            .buffer_capacity(20)
            .max_gprs_sessions(5)
            .build()
            .unwrap()
    }

    fn quick_cfg(rate: f64, seed: u64) -> SimConfig {
        SimConfig::builder(small_cell(rate))
            .seed(seed)
            .warmup(200.0)
            .batches(4, 500.0)
            .build()
    }

    #[test]
    fn runs_to_completion_and_reports() {
        let r = GprsSimulator::new(quick_cfg(0.5, 1)).run();
        assert_eq!(r.carried_data_traffic.batches, 4);
        assert!(r.events_processed > 1000);
        assert!(r.simulated_time >= 200.0 + 4.0 * 500.0 - 1e-6);
        assert!(r.carried_data_traffic.mean >= 0.0);
        assert!(r.carried_voice_traffic.mean > 0.0);
        assert!(r.avg_gprs_sessions.mean > 0.0);
        assert!(r.packet_loss_probability.mean >= 0.0);
        assert!(r.packet_loss_probability.mean <= 1.0);
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let a = GprsSimulator::new(quick_cfg(0.4, 42)).run();
        let b = GprsSimulator::new(quick_cfg(0.4, 42)).run();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.carried_data_traffic.mean, b.carried_data_traffic.mean);
        assert_eq!(a.queueing_delay.mean, b.queueing_delay.mean);
    }

    #[test]
    fn seeds_change_the_sample_path() {
        let a = GprsSimulator::new(quick_cfg(0.4, 1)).run();
        let b = GprsSimulator::new(quick_cfg(0.4, 2)).run();
        assert_ne!(a.events_processed, b.events_processed);
    }

    #[test]
    fn voice_load_scales_with_arrival_rate() {
        let lo = GprsSimulator::new(quick_cfg(0.2, 3)).run();
        let hi = GprsSimulator::new(quick_cfg(1.0, 3)).run();
        assert!(
            hi.carried_voice_traffic.mean > lo.carried_voice_traffic.mean,
            "{} vs {}",
            hi.carried_voice_traffic.mean,
            lo.carried_voice_traffic.mean
        );
    }

    #[test]
    fn tdma_radio_model_also_completes() {
        let cfg = SimConfig::builder(small_cell(0.4))
            .seed(5)
            .warmup(100.0)
            .batches(3, 300.0)
            .radio(RadioModel::TdmaBlocks)
            .build();
        let r = GprsSimulator::new(cfg).run();
        assert_eq!(r.carried_data_traffic.batches, 3);
        assert!(r.carried_data_traffic.mean > 0.0);
    }

    #[test]
    fn without_tcp_also_completes() {
        let cfg = SimConfig::builder(small_cell(0.4))
            .seed(6)
            .warmup(100.0)
            .batches(3, 300.0)
            .without_tcp()
            .build();
        let r = GprsSimulator::new(cfg).run();
        assert_eq!(r.carried_data_traffic.batches, 3);
        assert_eq!(r.tcp_retransmissions, 0);
    }

    #[test]
    fn hot_spot_mid_cell_carries_more_voice_than_homogeneous() {
        // Doubling only the mid cell's arrival rate must raise the
        // mid-cell voice load relative to the homogeneous run, and the
        // heterogeneous run stays deterministic.
        let homogeneous = GprsSimulator::new(quick_cfg(0.3, 21)).run();
        let hot_cfg = || {
            SimConfig::builder(small_cell(0.3))
                .seed(21)
                .warmup(200.0)
                .batches(4, 500.0)
                .hot_spot(0.9)
                .build()
        };
        let hot = GprsSimulator::new(hot_cfg()).run();
        assert!(
            hot.carried_voice_traffic.mean > homogeneous.carried_voice_traffic.mean,
            "hot {} vs homogeneous {}",
            hot.carried_voice_traffic.mean,
            homogeneous.carried_voice_traffic.mean
        );
        assert!((hot.call_arrival_rate - 0.9).abs() < 1e-12);
        let again = GprsSimulator::new(hot_cfg()).run();
        assert_eq!(hot.events_processed, again.events_processed);
        assert_eq!(
            hot.carried_data_traffic.mean,
            again.carried_data_traffic.mean
        );
    }

    #[test]
    fn per_cell_session_caps_gate_admission_locally() {
        // A tight mid-cell cap inside a roomy ring: the mid-cell session
        // population (the only one measured) must respect the *mid*
        // cell's limit, not the ring's.
        let mut mid = small_cell(2.0);
        mid.gprs_fraction = 0.5;
        mid.max_gprs_sessions = 2;
        let mut ring = mid.clone();
        ring.max_gprs_sessions = 12;
        let mut cells = vec![ring; NUM_CELLS];
        cells[MID_CELL] = mid;
        let cfg = SimConfig::builder_cells(cells)
            .seed(9)
            .warmup(100.0)
            .batches(3, 400.0)
            .build();
        let r = GprsSimulator::new(cfg).run();
        assert!(r.avg_gprs_sessions.mean <= 2.0 + 1e-9);
        assert!(r.gprs_blocking_probability.mean > 0.05);
    }

    #[test]
    fn upgrading_the_mid_cell_coding_scheme_raises_its_throughput() {
        use gprs_core::CodingScheme;
        let base = || {
            let mut c = small_cell(0.3);
            c.gprs_fraction = 0.2;
            c.coding_scheme = CodingScheme::Cs1;
            c
        };
        let run = |mid_cs: CodingScheme| {
            let mut cells = vec![base(); NUM_CELLS];
            cells[MID_CELL].coding_scheme = mid_cs;
            let cfg = SimConfig::builder_cells(cells)
                .seed(15)
                .warmup(200.0)
                .batches(4, 500.0)
                .build();
            GprsSimulator::new(cfg).run()
        };
        let slow = run(CodingScheme::Cs1);
        let fast = run(CodingScheme::Cs4);
        assert!(
            fast.throughput_per_user_kbps.mean > slow.throughput_per_user_kbps.mean,
            "CS-4 mid cell ATU {} should beat CS-1 {}",
            fast.throughput_per_user_kbps.mean,
            slow.throughput_per_user_kbps.mean
        );
    }

    #[test]
    fn session_population_respects_admission_limit() {
        // Hammer a tiny M and verify blocking shows up.
        let cell = CellConfig::builder()
            .traffic_model(TrafficModel::Model3)
            .call_arrival_rate(2.0)
            .gprs_fraction(0.5)
            .max_gprs_sessions(2)
            .buffer_capacity(10)
            .build()
            .unwrap();
        let cfg = SimConfig::builder(cell)
            .seed(7)
            .warmup(100.0)
            .batches(3, 400.0)
            .build();
        let r = GprsSimulator::new(cfg).run();
        assert!(r.avg_gprs_sessions.mean <= 2.0 + 1e-9);
        assert!(r.gprs_blocking_probability.mean > 0.05);
    }
}
