//! Simulation output: the paper's measures with batch-means confidence
//! intervals.

use gprs_des::ConfidenceInterval;

/// Mid-cell measures estimated by the simulator, each with a 95 %
/// batch-means confidence interval.
#[derive(Debug, Clone)]
pub struct SimResults {
    /// Combined call arrival rate the run used (calls/s).
    pub call_arrival_rate: f64,
    /// CDT: mean PDCHs carrying data.
    pub carried_data_traffic: ConfidenceInterval,
    /// CVT: mean busy voice channels.
    pub carried_voice_traffic: ConfidenceInterval,
    /// PLP: fraction of packets dropped at the BSC buffer.
    pub packet_loss_probability: ConfidenceInterval,
    /// QD: mean packet sojourn in the BSC buffer, seconds.
    pub queueing_delay: ConfidenceInterval,
    /// ATU: per-user throughput, kbit/s.
    pub throughput_per_user_kbps: ConfidenceInterval,
    /// AGS: mean active GPRS sessions.
    pub avg_gprs_sessions: ConfidenceInterval,
    /// GSM voice blocking probability.
    pub gsm_blocking_probability: ConfidenceInterval,
    /// GPRS session blocking probability (admission limit `M`).
    pub gprs_blocking_probability: ConfidenceInterval,
    /// Mid-cell incoming handover rate of GPRS sessions (sessions/s) —
    /// lets experiments check the Markov model's balancing assumption.
    pub gprs_handover_in_rate: ConfidenceInterval,
    /// Mean reserved PDCHs in the mid cell. Constant (zero-width CI)
    /// without load supervision; time-varying with it.
    pub avg_reserved_pdchs: ConfidenceInterval,
    /// Mid-cell PDCH re-dimensioning decisions taken by load supervision
    /// during the measurement period (0 without supervision).
    pub reconfigurations: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Simulated seconds (including warm-up).
    pub simulated_time: f64,
    /// Total TCP retransmissions observed in the mid cell's sessions.
    pub tcp_retransmissions: u64,
}

impl SimResults {
    /// Renders a compact one-line summary (for logs and examples).
    pub fn summary(&self) -> String {
        format!(
            "rate={:.3}: CDT={:.3}±{:.3} PLP={:.2e}±{:.1e} QD={:.3}±{:.3}s \
             ATU={:.2}±{:.2}kbps AGS={:.2}±{:.2}",
            self.call_arrival_rate,
            self.carried_data_traffic.mean,
            self.carried_data_traffic.half_width,
            self.packet_loss_probability.mean,
            self.packet_loss_probability.half_width,
            self.queueing_delay.mean,
            self.queueing_delay.half_width,
            self.throughput_per_user_kbps.mean,
            self.throughput_per_user_kbps.half_width,
            self.avg_gprs_sessions.mean,
            self.avg_gprs_sessions.half_width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_measures() {
        let ci = ConfidenceInterval::from_batch_means(&[1.0, 1.1, 0.9]);
        let r = SimResults {
            call_arrival_rate: 0.5,
            carried_data_traffic: ci,
            carried_voice_traffic: ci,
            packet_loss_probability: ci,
            queueing_delay: ci,
            throughput_per_user_kbps: ci,
            avg_gprs_sessions: ci,
            gsm_blocking_probability: ci,
            gprs_blocking_probability: ci,
            gprs_handover_in_rate: ci,
            avg_reserved_pdchs: ci,
            reconfigurations: 0,
            events_processed: 10,
            simulated_time: 100.0,
            tcp_retransmissions: 2,
        };
        let s = r.summary();
        assert!(s.contains("CDT"));
        assert!(s.contains("PLP"));
        assert!(s.contains("ATU"));
    }
}
