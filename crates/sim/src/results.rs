//! Simulation output: the paper's measures with batch-means confidence
//! intervals, plus the merged view over independent replications.

use crate::replication::TargetMeasure;
use gprs_des::replication::ReplicatedRun;
use gprs_des::ConfidenceInterval;

/// Mid-cell measures estimated by the simulator, each with a 95 %
/// batch-means confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResults {
    /// Combined call arrival rate of the **mid** cell (calls/s) — the
    /// cell statistics are collected in. Under a heterogeneous per-cell
    /// configuration this is `cells[MID_CELL]`'s rate, which may differ
    /// from the ring cells'.
    pub call_arrival_rate: f64,
    /// CDT: mean PDCHs carrying data.
    pub carried_data_traffic: ConfidenceInterval,
    /// CVT: mean busy voice channels.
    pub carried_voice_traffic: ConfidenceInterval,
    /// PLP: fraction of packets dropped at the BSC buffer.
    pub packet_loss_probability: ConfidenceInterval,
    /// QD: mean packet sojourn in the BSC buffer, seconds.
    pub queueing_delay: ConfidenceInterval,
    /// ATU: per-user throughput, kbit/s.
    pub throughput_per_user_kbps: ConfidenceInterval,
    /// AGS: mean active GPRS sessions.
    pub avg_gprs_sessions: ConfidenceInterval,
    /// GSM voice blocking probability.
    pub gsm_blocking_probability: ConfidenceInterval,
    /// GPRS session blocking probability (admission limit `M`).
    pub gprs_blocking_probability: ConfidenceInterval,
    /// Mid-cell incoming handover rate of GPRS sessions (sessions/s) —
    /// lets experiments check the Markov model's balancing assumption.
    pub gprs_handover_in_rate: ConfidenceInterval,
    /// Mean reserved PDCHs in the mid cell. Constant (zero-width CI)
    /// without load supervision; time-varying with it.
    pub avg_reserved_pdchs: ConfidenceInterval,
    /// Mid-cell PDCH re-dimensioning decisions taken by load supervision
    /// during the measurement period (0 without supervision).
    pub reconfigurations: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Simulated seconds (including warm-up).
    pub simulated_time: f64,
    /// Total TCP retransmissions observed in the mid cell's sessions.
    pub tcp_retransmissions: u64,
}

impl SimResults {
    /// Renders a compact one-line summary (for logs and examples).
    pub fn summary(&self) -> String {
        format!(
            "rate={:.3}: CDT={:.3}±{:.3} PLP={:.2e}±{:.1e} QD={:.3}±{:.3}s \
             ATU={:.2}±{:.2}kbps AGS={:.2}±{:.2}",
            self.call_arrival_rate,
            self.carried_data_traffic.mean,
            self.carried_data_traffic.half_width,
            self.packet_loss_probability.mean,
            self.packet_loss_probability.half_width,
            self.queueing_delay.mean,
            self.queueing_delay.half_width,
            self.throughput_per_user_kbps.mean,
            self.throughput_per_user_kbps.half_width,
            self.avg_gprs_sessions.mean,
            self.avg_gprs_sessions.half_width,
        )
    }
}

/// Measures merged over independent simulator replications.
///
/// Each field's confidence interval is a Student-t interval over the
/// **per-replication means** (the replication/deletion method): the
/// replications are genuinely independent runs — distinct RNG seed
/// families derived from the master seed — so, unlike batch means, no
/// within-run correlation survives in the interval. Produced by
/// [`crate::replication::run_replications`], whose wave-parallel
/// stopping rule is bit-identical to the sequential one for any thread
/// count; `PartialEq` is derived exactly so determinism tests can
/// assert full structural equality.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedResults {
    /// Replications performed (each one full simulator run).
    pub replications: usize,
    /// Whether the precision target on [`ReplicatedResults::target`]
    /// was met within the replication budget.
    pub converged: bool,
    /// The measure that drove the stopping rule.
    pub target: TargetMeasure,
    /// CDT: mean PDCHs carrying data, merged across replications.
    pub carried_data_traffic: ConfidenceInterval,
    /// CVT: mean busy voice channels.
    pub carried_voice_traffic: ConfidenceInterval,
    /// PLP: fraction of packets dropped at the BSC buffer.
    pub packet_loss_probability: ConfidenceInterval,
    /// QD: mean packet sojourn in the BSC buffer, seconds.
    pub queueing_delay: ConfidenceInterval,
    /// ATU: per-user throughput, kbit/s.
    pub throughput_per_user_kbps: ConfidenceInterval,
    /// AGS: mean active GPRS sessions.
    pub avg_gprs_sessions: ConfidenceInterval,
    /// GSM voice blocking probability.
    pub gsm_blocking_probability: ConfidenceInterval,
    /// GPRS session blocking probability (admission limit `M`).
    pub gprs_blocking_probability: ConfidenceInterval,
    /// Mid-cell incoming handover rate of GPRS sessions (sessions/s).
    pub gprs_handover_in_rate: ConfidenceInterval,
    /// Mean reserved PDCHs in the mid cell.
    pub avg_reserved_pdchs: ConfidenceInterval,
    /// Total events processed across all replications.
    pub events_processed: u64,
    /// Total simulated seconds across all replications (incl. warm-up).
    pub simulated_time: f64,
    /// Total TCP retransmissions across all replications.
    pub tcp_retransmissions: u64,
    /// The individual replication results, in replication order.
    pub runs: Vec<SimResults>,
}

impl ReplicatedResults {
    /// Merges a finished wave-parallel run: per-measure Student-t
    /// intervals over the replication means, totals summed.
    pub(crate) fn from_run(run: ReplicatedRun<SimResults>, target: TargetMeasure) -> Self {
        let runs = run.outputs;
        let merge = |pick: fn(&SimResults) -> f64| {
            let means: Vec<f64> = runs.iter().map(pick).collect();
            ConfidenceInterval::from_batch_means(&means)
        };
        ReplicatedResults {
            replications: run.replications,
            converged: run.converged,
            target,
            carried_data_traffic: merge(|r| r.carried_data_traffic.mean),
            carried_voice_traffic: merge(|r| r.carried_voice_traffic.mean),
            packet_loss_probability: merge(|r| r.packet_loss_probability.mean),
            queueing_delay: merge(|r| r.queueing_delay.mean),
            throughput_per_user_kbps: merge(|r| r.throughput_per_user_kbps.mean),
            avg_gprs_sessions: merge(|r| r.avg_gprs_sessions.mean),
            gsm_blocking_probability: merge(|r| r.gsm_blocking_probability.mean),
            gprs_blocking_probability: merge(|r| r.gprs_blocking_probability.mean),
            gprs_handover_in_rate: merge(|r| r.gprs_handover_in_rate.mean),
            avg_reserved_pdchs: merge(|r| r.avg_reserved_pdchs.mean),
            events_processed: runs.iter().map(|r| r.events_processed).sum(),
            simulated_time: runs.iter().map(|r| r.simulated_time).sum(),
            tcp_retransmissions: runs.iter().map(|r| r.tcp_retransmissions).sum(),
            runs,
        }
    }

    /// The merged interval of the measure that drove the stopping rule.
    pub fn target_interval(&self) -> &ConfidenceInterval {
        match self.target {
            TargetMeasure::CarriedDataTraffic => &self.carried_data_traffic,
            TargetMeasure::CarriedVoiceTraffic => &self.carried_voice_traffic,
            TargetMeasure::PacketLossProbability => &self.packet_loss_probability,
            TargetMeasure::QueueingDelay => &self.queueing_delay,
            TargetMeasure::ThroughputPerUser => &self.throughput_per_user_kbps,
            TargetMeasure::AvgGprsSessions => &self.avg_gprs_sessions,
            TargetMeasure::GsmBlockingProbability => &self.gsm_blocking_probability,
            TargetMeasure::GprsBlockingProbability => &self.gprs_blocking_probability,
            TargetMeasure::GprsHandoverInRate => &self.gprs_handover_in_rate,
        }
    }

    /// Renders a compact one-line summary (for logs and examples).
    pub fn summary(&self) -> String {
        format!(
            "{} reps ({}): CDT={:.3}±{:.3} CVT={:.3}±{:.3} PLP={:.2e}±{:.1e} ATU={:.2}±{:.2}kbps",
            self.replications,
            if self.converged {
                "converged"
            } else {
                "budget exhausted"
            },
            self.carried_data_traffic.mean,
            self.carried_data_traffic.half_width,
            self.carried_voice_traffic.mean,
            self.carried_voice_traffic.half_width,
            self.packet_loss_probability.mean,
            self.packet_loss_probability.half_width,
            self.throughput_per_user_kbps.mean,
            self.throughput_per_user_kbps.half_width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_measures() {
        let ci = ConfidenceInterval::from_batch_means(&[1.0, 1.1, 0.9]);
        let r = SimResults {
            call_arrival_rate: 0.5,
            carried_data_traffic: ci,
            carried_voice_traffic: ci,
            packet_loss_probability: ci,
            queueing_delay: ci,
            throughput_per_user_kbps: ci,
            avg_gprs_sessions: ci,
            gsm_blocking_probability: ci,
            gprs_blocking_probability: ci,
            gprs_handover_in_rate: ci,
            avg_reserved_pdchs: ci,
            reconfigurations: 0,
            events_processed: 10,
            simulated_time: 100.0,
            tcp_retransmissions: 2,
        };
        let s = r.summary();
        assert!(s.contains("CDT"));
        assert!(s.contains("PLP"));
        assert!(s.contains("ATU"));
    }
}
