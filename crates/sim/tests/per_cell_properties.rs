//! Property-based guarantees of the per-cell configuration layer:
//!
//! * a **uniform** per-cell `SimConfig` is bit-identical to the legacy
//!   single-cell builder path — same seeds, same `SimResults`, for any
//!   cell parameterization and any construction route (uniform builder,
//!   explicit cell vector, scenario lowering);
//! * **heterogeneous** per-cell configurations survive the
//!   `SimConfig::for_scenario` lowering unchanged (round-trip), so the
//!   simulator provably runs exactly the cells the analytical
//!   `ClusterModel` solves.

use gprs_core::cluster::NUM_CELLS;
use gprs_core::{CellConfig, CodingScheme, Scenario};
use gprs_sim::{GprsSimulator, SimConfig};
use gprs_traffic::TrafficModel;
use proptest::prelude::*;

fn coding(ix: u8) -> CodingScheme {
    match ix % 4 {
        0 => CodingScheme::Cs1,
        1 => CodingScheme::Cs2,
        2 => CodingScheme::Cs3,
        _ => CodingScheme::Cs4,
    }
}

/// A small but freely parameterized cell — tiny state spaces keep each
/// simulator run fast enough for property testing.
fn cell_strategy() -> impl Strategy<Value = CellConfig> {
    (
        4usize..=8,    // total channels
        0usize..=2,    // reserved PDCHs
        5usize..=15,   // buffer capacity
        2usize..=4,    // max GPRS sessions
        0u8..4,        // coding scheme
        0.1f64..0.8,   // call arrival rate
        0.05f64..0.25, // GPRS fraction
    )
        .prop_map(|(n, res, k, m, cs, rate, frac)| {
            CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .total_channels(n)
                .reserved_pdchs(res)
                .buffer_capacity(k)
                .max_gprs_sessions(m)
                .coding_scheme(coding(cs))
                .call_arrival_rate(rate)
                .gprs_fraction(frac)
                .build()
                .expect("strategy produces valid cells")
        })
}

proptest! {
    // Each case runs the simulator three times; keep the budget small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn uniform_per_cell_configs_are_bit_identical_to_the_legacy_path(
        cell in cell_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let finish = |b: gprs_sim::SimConfigBuilder| {
            b.seed(seed).warmup(50.0).batches(2, 150.0).build()
        };
        let legacy = finish(SimConfig::builder(cell.clone()));
        let explicit = finish(SimConfig::builder_cells(vec![cell.clone(); NUM_CELLS]));
        let scenario = Scenario::homogeneous(cell).expect("valid scenario");
        let lowered = finish(SimConfig::for_scenario(&scenario).expect("lowerable"));
        // The configs themselves coincide...
        prop_assert_eq!(&legacy, &explicit);
        prop_assert_eq!(&legacy, &lowered);
        // ...and so do the full sample paths, bit for bit.
        let a = GprsSimulator::new(legacy).run();
        let b = GprsSimulator::new(explicit).run();
        let c = GprsSimulator::new(lowered).run();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn per_cell_configs_survive_the_scenario_lowering_unchanged(
        cells in proptest::collection::vec(cell_strategy(), NUM_CELLS),
        scale in 0.5f64..1.5,
    ) {
        let scenario = Scenario::from_cells("proptest-mixed", cells)
            .expect("valid cells")
            .with_load_scale(scale)
            .expect("valid scale");
        let cfg = SimConfig::for_scenario(&scenario).expect("lowerable").build();
        // Round trip: the simulator runs exactly the scenario's
        // effective cells (load scale applied), nothing shared, nothing
        // dropped.
        prop_assert_eq!(cfg.cells, scenario.effective_cells().expect("valid"));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn heterogeneous_runs_are_deterministic_per_seed(
        cells in proptest::collection::vec(cell_strategy(), NUM_CELLS),
        seed in 0u64..1_000_000,
    ) {
        // The per-cell routing must not introduce nondeterminism: two
        // runs of the same fully heterogeneous config coincide bit for
        // bit.
        let scenario = Scenario::from_cells("proptest-det", cells).expect("valid cells");
        let mk = || {
            SimConfig::for_scenario(&scenario)
                .expect("lowerable")
                .seed(seed)
                .warmup(20.0)
                .batches(2, 80.0)
                .build()
        };
        prop_assert_eq!(mk(), mk());
        let a = GprsSimulator::new(mk()).run();
        let b = GprsSimulator::new(mk()).run();
        prop_assert_eq!(a, b);
    }
}
