//! Radio block errors + RLC ARQ retransmission — the paper's second
//! future-work hook ("taking into account packet retransmissions that
//! would lead to a decrease in overall throughput").

use gprs_core::CellConfig;
use gprs_sim::{GprsSimulator, RadioModel, SimConfig};
use gprs_traffic::TrafficModel;

/// A data-heavy cell so the radio link, not the offered load, binds.
fn saturated_cell(bler: f64) -> CellConfig {
    let mut c = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .call_arrival_rate(0.8)
        .buffer_capacity(25)
        .max_gprs_sessions(8)
        .block_error_rate(bler)
        .build()
        .unwrap();
    c.gprs_fraction = 0.25;
    c
}

fn run(cell: CellConfig, radio: RadioModel, seed: u64) -> gprs_sim::SimResults {
    let cfg = SimConfig::builder(cell)
        .seed(seed)
        .warmup(500.0)
        .batches(5, 1_000.0)
        .radio(radio)
        .build();
    GprsSimulator::new(cfg).run()
}

#[test]
fn tdma_throughput_scales_with_block_success_rate() {
    // At saturation the data path delivers μ·(1−BLER) per busy PDCH, so
    // aggregate throughput (ATU·AGS) with BLER 0.4 should be ≈ 0.6× the
    // clean channel's.
    let clean = run(saturated_cell(0.0), RadioModel::TdmaBlocks, 41);
    let noisy = run(saturated_cell(0.4), RadioModel::TdmaBlocks, 41);
    let tput =
        |r: &gprs_sim::SimResults| r.throughput_per_user_kbps.mean * r.avg_gprs_sessions.mean;
    let ratio = tput(&noisy) / tput(&clean);
    assert!(
        (0.45..0.8).contains(&ratio),
        "throughput ratio {ratio:.3}, expected ≈ 0.6"
    );
}

#[test]
fn processor_sharing_and_tdma_agree_under_bler() {
    // The PS model folds BLER into the service rate; the TDMA model
    // retransmits erred blocks explicitly. Same mean behaviour.
    let ps = run(saturated_cell(0.3), RadioModel::ProcessorSharing, 43);
    let tdma = run(saturated_cell(0.3), RadioModel::TdmaBlocks, 43);
    let rel = (ps.carried_data_traffic.mean - tdma.carried_data_traffic.mean).abs()
        / ps.carried_data_traffic.mean.max(1e-9);
    assert!(
        rel < 0.35,
        "CDT: PS {} vs TDMA {} (rel {rel:.2})",
        ps.carried_data_traffic.mean,
        tdma.carried_data_traffic.mean
    );
}

#[test]
fn bler_worsens_delay_and_loss() {
    let clean = run(saturated_cell(0.0), RadioModel::TdmaBlocks, 47);
    let noisy = run(saturated_cell(0.4), RadioModel::TdmaBlocks, 47);
    assert!(
        noisy.queueing_delay.mean > clean.queueing_delay.mean,
        "QD: noisy {} vs clean {}",
        noisy.queueing_delay.mean,
        clean.queueing_delay.mean
    );
    assert!(
        noisy.packet_loss_probability.mean >= clean.packet_loss_probability.mean * 0.9,
        "PLP should not improve with errors: noisy {} vs clean {}",
        noisy.packet_loss_probability.mean,
        clean.packet_loss_probability.mean
    );
}

#[test]
fn markov_model_matches_its_own_bler_abstraction() {
    // The model's effective-rate abstraction against the simulator's
    // explicit per-block ARQ, at a moderate operating point.
    use gprs_core::GprsModel;
    let mut cell = saturated_cell(0.3);
    cell.call_arrival_rate = 0.4;
    let model = GprsModel::new(cell.clone()).unwrap();
    let solved = model.solve_default().unwrap();
    let sim = run(cell, RadioModel::TdmaBlocks, 53);
    let m = solved.measures();
    let rel = (sim.carried_data_traffic.mean - m.carried_data_traffic).abs()
        / m.carried_data_traffic.max(1e-9);
    assert!(
        rel < 0.45,
        "CDT with BLER: sim {} vs model {} (rel {rel:.2})",
        sim.carried_data_traffic.mean,
        m.carried_data_traffic
    );
}
