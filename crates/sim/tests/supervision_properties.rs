//! Property-based tests of the load-supervision state machine: for any
//! valid configuration and any occupancy trace, the supervisor must
//! respect its bounds and its hysteresis contract.

use gprs_sim::supervision::{Adjustment, LoadSupervisor, SupervisionConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SupervisionConfig> {
    (
        0.1f64..60.0,  // epoch
        0.05f64..=1.0, // ewma weight
        // Strictly positive: with the threshold at exactly 0.0 a zero
        // occupancy is not "below" it and no quiet streak can ever form.
        0.001f64..0.45, // lower_below
        0.5f64..=1.0,   // raise_above (always > lower_below by ranges)
        0usize..3,      // min reserved
        3usize..8,      // max reserved
        1usize..6,      // down streak
    )
        .prop_map(
            |(epoch, w, lower, raise, min_r, max_r, streak)| SupervisionConfig {
                epoch,
                ewma_weight: w,
                raise_above: raise,
                lower_below: lower,
                min_reserved: min_r,
                max_reserved: max_r,
                down_streak: streak,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reservation_stays_in_bounds_for_any_trace(
        cfg in config_strategy(),
        initial in 0usize..10,
        trace in proptest::collection::vec(0.0f64..1.5, 1..200),
    ) {
        let mut s = LoadSupervisor::new(cfg, initial);
        prop_assert!((cfg.min_reserved..=cfg.max_reserved).contains(&s.reserved()));
        for &x in &trace {
            let before = s.reserved();
            let adj = s.observe(x);
            let after = s.reserved();
            prop_assert!((cfg.min_reserved..=cfg.max_reserved).contains(&after));
            // One step at a time, consistent with the returned adjustment.
            match adj {
                Some(Adjustment::Raised) => prop_assert_eq!(after, before + 1),
                Some(Adjustment::Lowered) => prop_assert_eq!(after, before - 1),
                None => prop_assert_eq!(after, before),
            }
            // The EWMA is a convex combination of clamped samples.
            prop_assert!((0.0..=1.0).contains(&s.smoothed_occupancy()));
        }
    }

    #[test]
    fn raises_happen_only_under_pressure(
        cfg in config_strategy(),
        trace in proptest::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let mut s = LoadSupervisor::new(cfg, cfg.min_reserved);
        for &x in &trace {
            let adj = s.observe(x);
            if adj == Some(Adjustment::Raised) {
                // A raise requires the *smoothed* signal above threshold.
                prop_assert!(
                    s.smoothed_occupancy() > cfg.raise_above,
                    "raised with EWMA {} <= {}",
                    s.smoothed_occupancy(),
                    cfg.raise_above
                );
            }
        }
    }

    #[test]
    fn lowering_never_happens_within_the_streak_window(
        cfg in config_strategy(),
        quiet_len in 0usize..10,
    ) {
        // Feed exactly `quiet_len` quiet epochs after a fresh raise-level
        // start: a release may appear only from epoch `down_streak` on.
        let mut s = LoadSupervisor::new(cfg, cfg.max_reserved);
        let mut released_at = None;
        for epoch in 0..quiet_len {
            if s.observe(0.0) == Some(Adjustment::Lowered) {
                released_at = Some(epoch + 1); // epochs are 1-based here
                break;
            }
        }
        if let Some(at) = released_at {
            prop_assert!(
                at >= cfg.down_streak,
                "released after {at} quiet epochs with streak {}",
                cfg.down_streak
            );
        } else {
            // No release: either not enough quiet epochs or already at min.
            prop_assert!(
                quiet_len < cfg.down_streak || cfg.max_reserved == cfg.min_reserved
            );
        }
    }
}
