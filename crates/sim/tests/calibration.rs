//! Calibration tests: the discrete-event machinery against queueing
//! theory.
//!
//! The voice side of the simulator is an Erlang loss system whose
//! blocking and carried load are known exactly — if the simulator's
//! estimates don't bracket the closed forms, the event engine, RNG
//! streams or statistics are wrong. This is the simulator analogue of
//! solving small chains with GTH.

use gprs_core::CellConfig;
use gprs_queueing::erlang;
use gprs_queueing::handover::{balance_default, HandoverParams};
use gprs_sim::{GprsSimulator, SimConfig};
use gprs_traffic::TrafficModel;

/// Long-ish voice-focused run: tiny GPRS share so the data path is idle.
fn voice_cell(rate: f64) -> CellConfig {
    CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(10)
        .max_gprs_sessions(2)
        .gprs_fraction(0.001)
        .call_arrival_rate(rate)
        .build()
        .unwrap()
}

#[test]
fn voice_blocking_matches_erlang_b() {
    let cell = voice_cell(0.6);
    let cfg = SimConfig::builder(cell.clone())
        .seed(31)
        .warmup(2_000.0)
        .batches(10, 4_000.0)
        .build();
    let r = GprsSimulator::new(cfg).run();

    // The simulator's cluster is homogeneous with emergent handovers, so
    // the theory reference is the *balanced* Erlang system.
    let balanced = balance_default(&HandoverParams {
        new_arrival_rate: cell.gsm_arrival_rate(),
        completion_rate: cell.gsm_completion_rate(),
        handover_rate: cell.gsm_handover_rate(),
        servers: cell.gsm_channels(),
    })
    .unwrap();
    let expect_cvt = balanced.queue.mean_busy();
    let tol = 4.0 * r.carried_voice_traffic.half_width + 0.02 * expect_cvt;
    assert!(
        (r.carried_voice_traffic.mean - expect_cvt).abs() < tol,
        "CVT {} ± {} vs Erlang {}",
        r.carried_voice_traffic.mean,
        r.carried_voice_traffic.half_width,
        expect_cvt
    );

    // New-call blocking: simulator counts only fresh arrivals in the mid
    // cell; the Erlang system sees fresh + handover arrivals — by PASTA
    // both face the same state distribution, so blocking matches.
    let expect_b = balanced.queue.blocking_probability();
    let tol = 4.0 * r.gsm_blocking_probability.half_width + 0.015;
    assert!(
        (r.gsm_blocking_probability.mean - expect_b).abs() < tol,
        "blocking {} ± {} vs Erlang {}",
        r.gsm_blocking_probability.mean,
        r.gsm_blocking_probability.half_width,
        expect_b
    );
}

#[test]
fn erlang_b_bracketed_across_loads() {
    // Coarser runs at two more operating points; the estimate must stay
    // within a few CI widths of theory everywhere.
    for (rate, seed) in [(0.3, 37u64), (1.0, 41)] {
        let cell = voice_cell(rate);
        let cfg = SimConfig::builder(cell.clone())
            .seed(seed)
            .warmup(1_000.0)
            .batches(8, 2_500.0)
            .build();
        let r = GprsSimulator::new(cfg).run();
        let balanced = balance_default(&HandoverParams {
            new_arrival_rate: cell.gsm_arrival_rate(),
            completion_rate: cell.gsm_completion_rate(),
            handover_rate: cell.gsm_handover_rate(),
            servers: cell.gsm_channels(),
        })
        .unwrap();
        let expect = balanced.queue.blocking_probability();
        let tol = 5.0 * r.gsm_blocking_probability.half_width + 0.02;
        assert!(
            (r.gsm_blocking_probability.mean - expect).abs() < tol,
            "rate {rate}: blocking {} vs {}",
            r.gsm_blocking_probability.mean,
            expect
        );
    }
}

#[test]
fn no_mobility_reduces_to_textbook_erlang() {
    // With an (almost) infinite dwell time there are no handovers and
    // the mid cell is a textbook M/M/c/c fed only by fresh arrivals.
    let cell = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(10)
        .max_gprs_sessions(2)
        .gprs_fraction(0.001)
        .gsm_dwell_time(1e9)
        .gprs_dwell_time(1e9)
        .call_arrival_rate(0.5)
        .build()
        .unwrap();
    let rho = cell.gsm_arrival_rate() * cell.gsm_call_duration;
    let servers = cell.gsm_channels();
    let cfg = SimConfig::builder(cell)
        .seed(43)
        .warmup(2_000.0)
        .batches(8, 4_000.0)
        .build();
    let r = GprsSimulator::new(cfg).run();
    // Note: with dwell >> duration the leave rate ≈ completion rate.
    let expect = erlang::carried_load(servers, rho).unwrap();
    let tol = 4.0 * r.carried_voice_traffic.half_width + 0.03 * expect;
    assert!(
        (r.carried_voice_traffic.mean - expect).abs() < tol,
        "CVT {} ± {} vs Erlang {}",
        r.carried_voice_traffic.mean,
        r.carried_voice_traffic.half_width,
        expect
    );
}
