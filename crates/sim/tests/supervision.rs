//! End-to-end behaviour of the load-supervision (capacity on demand)
//! procedure inside the network simulator.

use gprs_core::CellConfig;
use gprs_sim::{GprsSimulator, SimConfig, SupervisionConfig};
use gprs_traffic::TrafficModel;

fn cell(rate: f64, gprs_fraction: f64) -> CellConfig {
    let mut c = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .call_arrival_rate(rate)
        .buffer_capacity(20)
        .max_gprs_sessions(6)
        .build()
        .unwrap();
    c.gprs_fraction = gprs_fraction;
    c
}

fn supervision() -> SupervisionConfig {
    SupervisionConfig {
        epoch: 5.0,
        ewma_weight: 0.4,
        raise_above: 0.3,
        lower_below: 0.05,
        min_reserved: 1,
        max_reserved: 6,
        down_streak: 4,
    }
}

#[test]
fn static_runs_report_constant_reservation() {
    let cfg = SimConfig::builder(cell(0.4, 0.05))
        .seed(7)
        .warmup(300.0)
        .batches(4, 600.0)
        .build();
    let r = GprsSimulator::new(cfg).run();
    assert!((r.avg_reserved_pdchs.mean - 1.0).abs() < 1e-12);
    assert_eq!(r.avg_reserved_pdchs.half_width, 0.0);
    assert_eq!(r.reconfigurations, 0);
}

#[test]
fn data_pressure_raises_the_reservation() {
    // 20% GPRS arrivals: the buffer fills regularly, supervision must
    // allocate extra PDCHs.
    let cfg = SimConfig::builder(cell(0.8, 0.2))
        .seed(11)
        .warmup(300.0)
        .batches(4, 600.0)
        .supervision(supervision())
        .build();
    let r = GprsSimulator::new(cfg).run();
    // Most raises happen during warm-up (hysteresis holds the level
    // afterwards — that is the point), so assert on the held level, not
    // on measurement-period switch counts.
    assert!(
        r.avg_reserved_pdchs.mean > 1.2,
        "expected supervision to raise the reservation, got {}",
        r.avg_reserved_pdchs.mean
    );
}

#[test]
fn idle_data_path_keeps_the_minimum() {
    // Almost no GPRS traffic *and* an unloaded voice side (at higher
    // call rates voice saturates the on-demand pool, and supervision
    // correctly raises the reservation to protect the starved data
    // path). A genuinely idle cell must stay at the minimum.
    let cfg = SimConfig::builder(cell(0.1, 0.002))
        .seed(13)
        .warmup(300.0)
        .batches(4, 600.0)
        .supervision(supervision())
        .build();
    let r = GprsSimulator::new(cfg).run();
    assert!(
        r.avg_reserved_pdchs.mean < 1.3,
        "idle data path should stay near the minimum, got {}",
        r.avg_reserved_pdchs.mean
    );
}

#[test]
fn voice_saturation_starves_data_and_supervision_reacts() {
    // The counterpart of the idle test: raise the call rate with the
    // same tiny GPRS share, and the voice side (population ≈ 80 calls
    // offered on 19 channels) starves the data path; the occupancy-
    // driven supervisor must respond by reserving more PDCHs.
    let cfg = SimConfig::builder(cell(0.7, 0.002))
        .seed(13)
        .warmup(300.0)
        .batches(4, 600.0)
        .supervision(supervision())
        .build();
    let r = GprsSimulator::new(cfg).run();
    assert!(
        r.avg_reserved_pdchs.mean > 1.2,
        "voice-saturated cell should trigger raises, got {}",
        r.avg_reserved_pdchs.mean
    );
}

#[test]
fn supervision_improves_data_qos_over_static_minimum() {
    let base = cell(0.8, 0.2);
    let static_cfg = SimConfig::builder(base.clone())
        .seed(17)
        .warmup(300.0)
        .batches(5, 600.0)
        .build();
    let adaptive_cfg = SimConfig::builder(base)
        .seed(17)
        .warmup(300.0)
        .batches(5, 600.0)
        .supervision(supervision())
        .build();
    let fixed = GprsSimulator::new(static_cfg).run();
    let adaptive = GprsSimulator::new(adaptive_cfg).run();
    // The adaptive run holds more PDCHs under this load, so its
    // queueing delay must improve (loss is noisier; delay is the
    // robust signal at these run lengths).
    assert!(
        adaptive.queueing_delay.mean < fixed.queueing_delay.mean,
        "adaptive QD {} should beat static QD {}",
        adaptive.queueing_delay.mean,
        fixed.queueing_delay.mean
    );
    // And the voice side pays: blocking must not *improve*.
    assert!(
        adaptive.gsm_blocking_probability.mean >= fixed.gsm_blocking_probability.mean - 0.02,
        "voice blocking: adaptive {} vs static {}",
        adaptive.gsm_blocking_probability.mean,
        fixed.gsm_blocking_probability.mean
    );
}

#[test]
fn supervised_runs_stay_deterministic_per_seed() {
    let mk = || {
        SimConfig::builder(cell(0.6, 0.1))
            .seed(23)
            .warmup(200.0)
            .batches(3, 400.0)
            .supervision(supervision())
            .build()
    };
    let a = GprsSimulator::new(mk()).run();
    let b = GprsSimulator::new(mk()).run();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.reconfigurations, b.reconfigurations);
    assert!((a.avg_reserved_pdchs.mean - b.avg_reserved_pdchs.mean).abs() < 1e-12);
    assert!((a.carried_data_traffic.mean - b.carried_data_traffic.mean).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "at least one voice channel")]
fn supervision_range_must_leave_voice_room() {
    let mut sup = supervision();
    sup.max_reserved = 20; // the whole cell
    let _ = SimConfig::builder(cell(0.5, 0.05)).supervision(sup).build();
}

#[test]
#[should_panic(expected = "at least one voice channel")]
fn supervision_range_beyond_the_cell_is_rejected_at_build_time() {
    // Regression: max_reserved > total_channels used to slip through to
    // the simulator, where `total_channels - reserved()` underflowed in
    // usize mid-run. The builder now rejects it up front.
    let base = cell(0.5, 0.05);
    let mut sup = supervision();
    sup.max_reserved = base.total_channels + 1;
    let _ = SimConfig::builder(base).supervision(sup).build();
}

#[test]
fn hand_built_configs_with_oversized_ranges_are_clamped_not_underflowed() {
    // SimConfig's fields are public, so a config can bypass the builder
    // entirely. The simulator clamps each cell's supervisor range to
    // that cell's channel count, so the run completes (with the
    // reservation saturating at N - 1) instead of panicking on a usize
    // underflow at the first supervision epoch.
    let base = cell(0.8, 0.2);
    let total = base.total_channels;
    let mut sup = supervision();
    sup.max_reserved = total + 1;
    let mut cfg = SimConfig::builder(base)
        .seed(31)
        .warmup(100.0)
        .batches(2, 300.0)
        .build();
    cfg.supervision = Some(sup); // bypasses the builder's validation
    let r = GprsSimulator::new(cfg).run();
    assert!(r.avg_reserved_pdchs.mean <= (total - 1) as f64 + 1e-12);
    assert_eq!(r.carried_data_traffic.batches, 2);
}
