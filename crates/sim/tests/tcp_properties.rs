//! Property-based tests of the TCP Reno sender: whole transfers across a
//! randomly lossy network must preserve the protocol invariants and
//! always complete.

use gprs_sim::tcp::{Seq, TcpReceiver, TcpSender};
use gprs_sim::TcpConfig;
use proptest::prelude::*;

/// Deterministic per-(seq, attempt) drop decision derived from a seed.
fn dropped(seed: u64, seq: Seq, attempt: u32, loss_permille: u16) -> bool {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(u64::from(attempt).wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 31;
    x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 27;
    (x % 1000) < u64::from(loss_permille)
}

/// Runs one complete transfer and checks invariants at every step.
/// Returns (steps, retransmissions).
fn run_transfer(total: Seq, seed: u64, loss_permille: u16) -> (u64, u64) {
    let cfg = TcpConfig::default();
    let mut sender = TcpSender::new(cfg);
    let mut receiver = TcpReceiver::new();
    let mut now = 0.0f64;
    let mut attempts = std::collections::HashMap::<Seq, u32>::new();

    let mut outbox: Vec<Seq> = sender.on_app_data(total, now);
    let mut steps = 0u64;
    let mut last_cum_ack = 0;

    while !sender.all_acked() {
        steps += 1;
        assert!(
            steps < 2_000_000,
            "transfer did not complete (total {total}, seed {seed}, loss {loss_permille}/1000)"
        );

        // Invariants that must hold at every step.
        assert!(sender.cwnd() >= 1.0, "cwnd collapsed below one");
        assert!(
            sender.flight_size() <= cfg.receiver_window as usize,
            "flight {} exceeds receiver window",
            sender.flight_size()
        );
        assert!(sender.cum_ack() >= last_cum_ack, "cumulative ACK regressed");
        assert!(sender.rto() <= cfg.max_rto + 1e-9, "RTO above cap");
        last_cum_ack = sender.cum_ack();

        if outbox.is_empty() {
            // Nothing in the network: progress requires the RTO.
            assert!(sender.rto_armed(), "idle but un-acked and no RTO armed");
            now += sender.rto();
            outbox = sender.on_rto(now);
            continue;
        }

        // Deliver (or drop) everything currently in the network, then
        // feed the resulting cumulative ACKs back.
        let mut acks = Vec::new();
        for seq in std::mem::take(&mut outbox) {
            let attempt = attempts.entry(seq).or_insert(0);
            *attempt += 1;
            if !dropped(seed, seq, *attempt, loss_permille) {
                acks.push(receiver.on_packet(seq));
            }
        }
        now += 0.05;
        for ack in acks {
            outbox.extend(sender.on_ack(ack, now));
        }
    }

    // Completion: the receiver saw a gapless prefix covering everything.
    assert_eq!(receiver.cumulative(), total);
    assert_eq!(sender.cum_ack(), total);
    assert_eq!(sender.flight_size(), 0);
    (steps, sender.retransmissions())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transfers_complete_under_random_loss(
        total in 1u64..400,
        seed in 0u64..1_000_000,
        loss in 0u16..400,
    ) {
        let (_, retx) = run_transfer(total, seed, loss);
        // No spurious retransmissions on a loss-free path.
        if loss == 0 {
            prop_assert_eq!(retx, 0);
        }
    }

    #[test]
    fn lossless_transfers_have_no_timeouts(total in 1u64..400, seed in 0u64..1000) {
        let cfg = TcpConfig::default();
        let mut sender = TcpSender::new(cfg);
        let mut receiver = TcpReceiver::new();
        let mut now = 0.0;
        let mut outbox = sender.on_app_data(total, now);
        let mut guard = 0;
        while !sender.all_acked() {
            guard += 1;
            prop_assert!(guard < 100_000);
            let mut acks = Vec::new();
            for seq in std::mem::take(&mut outbox) {
                acks.push(receiver.on_packet(seq));
            }
            now += 0.01 + (seed % 100) as f64 / 1e4; // vary the RTT
            for ack in acks {
                outbox.extend(sender.on_ack(ack, now));
            }
        }
        prop_assert_eq!(sender.timeouts(), 0);
        prop_assert_eq!(sender.retransmissions(), 0);
        // With samples taken, the RTO must have adapted to the RTT scale.
        prop_assert!(sender.srtt().is_some());
        prop_assert!(sender.rto() >= cfg.min_rto);
    }

    #[test]
    fn heavier_loss_never_reduces_retransmissions_to_impossible_levels(
        total in 50u64..200,
        seed in 0u64..10_000,
    ) {
        // Sanity relation rather than strict monotonicity (loss patterns
        // differ): substantial loss must cause at least one
        // retransmission, and retransmissions stay bounded by steps.
        let (steps, retx) = run_transfer(total, seed, 300);
        prop_assert!(retx > 0, "30% loss with {total} packets produced no retransmissions");
        prop_assert!(retx < steps, "more retransmissions than steps");
    }
}

#[test]
fn receiver_acks_cumulative_prefix_only() {
    let mut r = TcpReceiver::new();
    assert_eq!(r.on_packet(2), 0); // hole at 1
    assert_eq!(r.on_packet(3), 0);
    assert_eq!(r.on_packet(1), 3); // hole filled: jump
    assert_eq!(r.on_packet(10), 3);
    assert_eq!(r.cumulative(), 3);
    // Duplicate delivery is idempotent.
    assert_eq!(r.on_packet(2), 3);
}
