//! Heterogeneous cluster fixed-point benchmarks: the 7 per-iteration
//! cell solves run sequentially vs fanned out over the machine's
//! threads, plus the load-scale sweep at both fan-out levels. Before
//! timing, the thread counts are checked to agree bit-for-bit (the
//! cluster solve is deterministic by construction).

use criterion::{criterion_group, criterion_main, Criterion};
use gprs_core::cluster::{
    par_sweep_load_scales_threads, sweep_load_scales, ClusterModel, ClusterSolveOptions,
};
use gprs_core::CellConfig;
use gprs_ctmc::solver::SolveOptions;
use gprs_exec::num_threads;
use gprs_traffic::TrafficModel;

fn hot_spot_cluster() -> ClusterModel {
    let ring = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(12)
        .max_gprs_sessions(5)
        .call_arrival_rate(0.3)
        .build()
        .expect("valid config");
    ClusterModel::hot_spot(ring, 0.6).expect("valid cluster")
}

fn opts(threads: usize) -> ClusterSolveOptions {
    ClusterSolveOptions::quick()
        .with_solve(SolveOptions::quick().with_max_sweeps(200_000))
        .with_threads(threads)
}

fn check_determinism(cluster: &ClusterModel) {
    let seq = cluster.solve(&opts(1)).expect("sequential solve");
    let par = cluster.solve(&opts(num_threads())).expect("parallel solve");
    assert_eq!(seq.iterations(), par.iterations());
    for (a, b) in seq.cells().iter().zip(par.cells()) {
        assert_eq!(
            a.measures, b.measures,
            "thread counts must agree bit-for-bit"
        );
        assert_eq!(a.gsm_handover_in.to_bits(), b.gsm_handover_in.to_bits());
    }
}

fn bench_cluster(c: &mut Criterion) {
    println!("cluster fan-out workers: {}", num_threads());
    let cluster = hot_spot_cluster();
    check_determinism(&cluster);

    let mut g = c.benchmark_group("cluster_fixed_point");
    g.sample_size(5);
    g.bench_function("cells_sequential", |b| {
        b.iter(|| cluster.solve(&opts(1)).unwrap())
    });
    g.bench_function("cells_parallel", |b| {
        b.iter(|| cluster.solve(&opts(num_threads())).unwrap())
    });
    g.finish();

    let scales = [0.6, 0.8, 1.0, 1.2, 1.4, 1.6];
    let mut g = c.benchmark_group("cluster_sweep6");
    g.sample_size(3);
    g.bench_function("sequential", |b| {
        b.iter(|| sweep_load_scales(&cluster, &scales, &opts(1)).unwrap())
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            par_sweep_load_scales_threads(&cluster, &scales, &opts(1), num_threads()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
