//! Symbolic/numeric split benchmarks: the chunked template-refill sweep
//! against the historical per-point rebuild, plus the cluster-style
//! repeated cell solve (template refill vs model rebuild per outer
//! iteration).
//!
//! Before timing, refill-vs-rebuild bit-identity is asserted: cold
//! template solves must equal the fresh allocating path exactly, and
//! the parallel sweep must equal the sequential sweep bit-for-bit at
//! 1/2/8 workers (the warm-start contract of `gprs_core::sweep`).

use criterion::{criterion_group, criterion_main, Criterion};
use gprs_bench::{figure_sweep_cell, small_model, sweep_rebuild};
use gprs_core::sweep::{par_sweep_arrival_rates_threads, rate_grid, sweep_arrival_rates};
use gprs_core::template::{GeneratorTemplate, WarmStart};
use gprs_core::{CellConfig, GprsModel};
use gprs_ctmc::SolveOptions;

fn opts() -> SolveOptions {
    SolveOptions::quick().with_max_sweeps(200_000)
}

fn check_bit_identity(base: &CellConfig, rates: &[f64], opts: &SolveOptions) {
    // Cold template solve == fresh allocating solve, exact equality.
    let mut cfg = base.clone();
    cfg.call_arrival_rate = rates[0];
    let model = GprsModel::new(cfg).expect("valid config");
    let fresh = model.solve(opts, None).expect("solve");
    let mut template = GeneratorTemplate::new(base).expect("template");
    template
        .solve(&model, opts, WarmStart::Cold)
        .expect("template solve");
    assert_eq!(
        template.stationary(),
        fresh.stationary().as_slice(),
        "refill-vs-rebuild solves must be bit-identical"
    );
    // Refilled matrix == fresh assembly, exact equality.
    let refilled = template.sparse_for(&model).expect("refill");
    let assembled = model.assemble_sparse().expect("assemble");
    for s in 0..assembled.num_states() {
        assert_eq!(refilled.row(s), assembled.row(s), "row {s}");
    }
    // Sequential == parallel at 1/2/8 workers, exact equality.
    let seq = sweep_arrival_rates(base, rates, opts).expect("seq sweep");
    for threads in [1usize, 2, 8] {
        let par = par_sweep_arrival_rates_threads(base, rates, opts, threads).expect("par sweep");
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.measures, s.measures, "threads {threads}");
            assert_eq!(p.residual.to_bits(), s.residual.to_bits());
        }
    }
}

fn bench_sweep(c: &mut Criterion) {
    let base = figure_sweep_cell();
    let rates = rate_grid(0.05, 1.0, 20);
    let opts = opts();
    // Preflight on a prefix that still crosses a WARM_CHUNK boundary.
    check_bit_identity(&base, &rates[..10], &opts);

    let mut g = c.benchmark_group("sweep_fig20");
    g.sample_size(2);
    // Historical path: per-point rebuild, all points cold.
    g.bench_function("sweep_rebuild", |b| {
        b.iter(|| sweep_rebuild(&base, &rates, &opts))
    });
    // Template path: chunked warm-start chains over reused workspaces.
    g.bench_function("sweep_refill", |b| {
        b.iter(|| sweep_arrival_rates(&base, &rates, &opts).unwrap())
    });
    g.finish();
}

/// The cluster inner loop in isolation: one cell re-solved across outer
/// iterations whose handover arrival rates drift toward a fixed point.
fn bench_cell_iterations(c: &mut Criterion) {
    // Quick-scale cluster cell (the ext03 / cluster-bench fixture size).
    let base = small_model().config().clone();
    let iterations = 12usize;
    let rates: Vec<(f64, f64)> = (0..iterations)
        .map(|i| {
            let t = 1.0 + 0.5 / (i + 1) as f64; // geometric-ish drift
            (0.02 * t, 0.004 * t)
        })
        .collect();
    let opts = opts();

    let mut g = c.benchmark_group("cluster_cell12");
    g.sample_size(5);
    // Before: every outer iteration rebuilds the model and solves cold
    // (the pre-template `with_handover_arrivals` path).
    g.bench_function("cell_rebuild", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(gsm, gprs) in &rates {
                let model = GprsModel::with_handover_arrivals(base.clone(), gsm, gprs)
                    .expect("valid config");
                let solved = model.solve(&opts, None).expect("solve");
                acc += solved.measures().carried_data_traffic;
            }
            acc
        })
    });
    // After: one template carries workspace + warm-start chain across
    // the iterations, as `ClusterModel::solve` now does per cell.
    g.bench_function("cell_refill", |b| {
        b.iter(|| {
            let mut template = GeneratorTemplate::new(&base).expect("template");
            let mut acc = 0.0;
            for &(gsm, gprs) in &rates {
                let model = template
                    .model_with_handovers(base.clone(), gsm, gprs)
                    .expect("valid config");
                let solved = template
                    .solve(&model, &opts, WarmStart::Chained)
                    .expect("solve");
                acc += solved.measures.carried_data_traffic;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sweep, bench_cell_iterations);
criterion_main!(benches);
