//! Steady-state solver benchmarks: the ablation behind the block
//! tridiagonal (MBD) solver choice.
//!
//! Compares, on the same GPRS chain:
//! * block tridiagonal with exact-marginal projection (production),
//! * plain block tridiagonal,
//! * point Gauss–Seidel over the flat chain,
//! * GTH direct elimination (small chains only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gprs_bench::{medium_model, small_model};
use gprs_core::{CellConfig, GprsModel};
use gprs_ctmc::gth::solve_gth;
use gprs_ctmc::mbd::{solve_mbd, solve_mbd_projected};
use gprs_ctmc::solver::{solve_gauss_seidel, SolveOptions};
use gprs_traffic::TrafficModel;

fn opts() -> SolveOptions {
    SolveOptions::quick().with_max_sweeps(100_000)
}

/// ~700-state model: small enough for the O(n³) GTH direct solver.
fn tiny_model() -> GprsModel {
    let cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .total_channels(6)
        .reserved_pdchs(1)
        .buffer_capacity(6)
        .max_gprs_sessions(3)
        .call_arrival_rate(0.5)
        .build()
        .unwrap();
    GprsModel::new(cfg).unwrap()
}

fn bench_solver_comparison(c: &mut Criterion) {
    // Tiny chain: all four solvers, including direct elimination.
    let tiny = tiny_model();
    let marginal = tiny.phase_marginal();
    let guess = tiny.product_form_guess();
    let mut g = c.benchmark_group("solver_tiny_700");
    g.sample_size(20);
    g.bench_function("mbd_projected", |b| {
        b.iter(|| solve_mbd_projected(&tiny, &marginal, Some(&guess), &opts()).unwrap())
    });
    g.bench_function("mbd_plain", |b| {
        b.iter(|| solve_mbd(&tiny, Some(&guess), &opts()).unwrap())
    });
    g.bench_function("point_gauss_seidel", |b| {
        b.iter(|| solve_gauss_seidel(&tiny, Some(&guess), &opts()).unwrap())
    });
    let sparse = tiny.assemble_sparse().unwrap();
    g.bench_function("gth_direct", |b| b.iter(|| solve_gth(&sparse).unwrap()));
    g.finish();

    // Small chain: the iterative solvers only (GTH is O(n³)).
    let model = small_model();
    let marginal = model.phase_marginal();
    let guess = model.product_form_guess();
    let mut g = c.benchmark_group("solver_small_15k");
    g.sample_size(10);
    g.bench_function("mbd_projected", |b| {
        b.iter(|| solve_mbd_projected(&model, &marginal, Some(&guess), &opts()).unwrap())
    });
    g.bench_function("mbd_plain", |b| {
        b.iter(|| solve_mbd(&model, Some(&guess), &opts()).unwrap())
    });
    g.bench_function("point_gauss_seidel", |b| {
        b.iter(|| solve_gauss_seidel(&model, Some(&guess), &opts()).unwrap())
    });
    g.finish();
}

fn bench_state_space_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("mbd_scaling");
    g.sample_size(10);
    for (label, k, m) in [("15k", 12, 7), ("46k", 19, 10), ("112k", 29, 13)] {
        let cfg = CellConfig::builder()
            .traffic_model(TrafficModel::Model3)
            .buffer_capacity(k)
            .max_gprs_sessions(m)
            .call_arrival_rate(0.5)
            .build()
            .unwrap();
        let model = GprsModel::new(cfg).unwrap();
        g.bench_with_input(BenchmarkId::new("solve", label), &model, |b, model| {
            b.iter(|| model.solve(&opts(), None).unwrap())
        });
    }
    g.finish();
}

fn bench_single_sweep_cost(c: &mut Criterion) {
    // One projected sweep on the medium model, isolating per-sweep cost
    // from convergence behaviour.
    let model = medium_model();
    let marginal = model.phase_marginal();
    let guess = model.product_form_guess();
    let one_sweep = SolveOptions::quick()
        .with_max_sweeps(1)
        .with_tolerance(1e-300);
    let mut g = c.benchmark_group("sweep_cost_190k");
    g.sample_size(10);
    g.bench_function("one_projected_sweep", |b| {
        b.iter(|| {
            // NotConverged is the expected outcome after one sweep.
            let _ = solve_mbd_projected(&model, &marginal, Some(&guess), &one_sweep);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_solver_comparison,
    bench_state_space_scaling,
    bench_single_sweep_cost
);
criterion_main!(benches);
