//! Replication-engine scaling: a fixed count of independent simulator
//! replications (min == max pins the stopping rule, so every thread
//! count performs *exactly* the same eight runs) executed at 1/2/4/8
//! worker threads. The ratio of the 1-thread time to the N-thread time
//! is the scaling efficiency of the wave executor on this machine —
//! the evidence behind moving the nightly cross-validation onto the
//! parallel replication path. Determinism is asserted before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use gprs_core::{CellConfig, Scenario};
use gprs_exec::num_threads;
use gprs_sim::{run_replications, ReplicationOptions, SimConfig, TargetMeasure};
use gprs_traffic::TrafficModel;

const REPLICATIONS: usize = 8;

fn fixture_cfg() -> SimConfig {
    let cell = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .total_channels(8)
        .buffer_capacity(15)
        .max_gprs_sessions(4)
        .call_arrival_rate(0.3)
        .build()
        .expect("valid config");
    SimConfig::for_scenario(&Scenario::homogeneous(cell).expect("valid scenario"))
        .expect("lowerable scenario")
        .seed(2024)
        .warmup(100.0)
        .batches(2, 400.0)
        .build()
}

fn opts(threads: usize) -> ReplicationOptions {
    // min == max: exactly REPLICATIONS runs, no speculative variance.
    ReplicationOptions::new(0.01, REPLICATIONS, REPLICATIONS)
        .with_target(TargetMeasure::CarriedVoiceTraffic)
        .with_threads(threads)
}

fn bench_replication(c: &mut Criterion) {
    println!(
        "replication wave workers available: {} (benching 1/2/4/8)",
        num_threads()
    );
    let cfg = fixture_cfg();

    // Thread counts must agree bit-for-bit before any timing is
    // trusted.
    let reference = run_replications(&cfg, &opts(1));
    assert_eq!(reference.replications, REPLICATIONS);
    for threads in [2usize, 4, 8] {
        let got = run_replications(&cfg, &opts(threads));
        assert_eq!(got, reference, "threads {threads} diverged");
    }

    let mut g = c.benchmark_group(format!("replication_fixed{REPLICATIONS}"));
    g.sample_size(3);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| run_replications(&cfg, &opts(threads)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
