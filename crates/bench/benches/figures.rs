//! `cargo bench` target that regenerates every paper figure at quick
//! scale and prints the series rows (harness = false: this is a
//! reproduction driver, not a timing microbenchmark — wall-clock per
//! figure is reported alongside).
//!
//! Figures 5 and 6 (simulator validation) are skipped here to keep
//! `cargo bench` under a few minutes; run them via
//! `repro --figure fig05,fig06`.

use gprs_experiments::figures::run_figure;
use gprs_experiments::Scale;
use std::time::Instant;

fn main() {
    // Respect Criterion-style filter arguments minimally: `--bench` is
    // passed by cargo; any other free argument filters figure ids.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();

    let figure_ids = [
        "fig14", "fig15", "fig11", "fig12", "fig13", "fig07", "fig08", "fig09", "fig10", "ext01",
    ];
    let mut failures = 0;
    for id in figure_ids {
        if !filter.is_empty() && !filter.iter().any(|f| id.contains(f.as_str())) {
            continue;
        }
        let t0 = Instant::now();
        match run_figure(id, Scale::Quick) {
            Ok(fig) => {
                let elapsed = t0.elapsed();
                println!("{} — regenerated in {elapsed:.2?}", fig.title);
                for panel in &fig.panels {
                    for s in &panel.series {
                        let head: Vec<String> =
                            s.y.iter().take(6).map(|v| format!("{v:.4}")).collect();
                        println!(
                            "    {} / {}: [{}{}]",
                            panel.title,
                            s.label,
                            head.join(", "),
                            if s.y.len() > 6 { ", ..." } else { "" }
                        );
                    }
                }
                let pass = fig.checks.iter().filter(|c| c.pass).count();
                println!("    shape checks: {pass}/{}\n", fig.checks.len());
                if pass != fig.checks.len() {
                    failures += 1;
                }
            }
            Err(e) => {
                println!("{id}: ERROR {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} figure(s) failed");
        std::process::exit(1);
    }
}
