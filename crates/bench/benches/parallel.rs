//! Sequential vs parallel pipeline benchmarks — the evidence behind the
//! parallel solve pipeline:
//!
//! * `sweep8_*` — an 8-point arrival-rate sweep (the paper's x-axis)
//!   run sequentially vs fanned out over the machine's threads, at the
//!   ~15k-state and ~190k-state fixtures. On a multi-core runner the
//!   parallel sweep approaches `min(threads, 8)`× the sequential
//!   throughput; before timing, both paths are checked to agree within
//!   solver tolerance.
//! * `solve_*` — one stationary solve: sequential point Gauss–Seidel vs
//!   parallel red-black SOR vs damped parallel Jacobi on the assembled
//!   chain.
//! * `assemble_*` — Table 1 transition enumeration + CSR assembly,
//!   sequential vs row-parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use gprs_bench::{medium_model, small_model};
use gprs_core::sweep::{par_sweep_arrival_rates, rate_grid, sweep_arrival_rates};
use gprs_core::GprsModel;
use gprs_ctmc::parallel::{solve_jacobi, RedBlackSor};
use gprs_ctmc::solver::{solve_gauss_seidel, SolveOptions};
use gprs_ctmc::SparseGenerator;
use gprs_exec::num_threads;

fn opts() -> SolveOptions {
    SolveOptions::quick().with_max_sweeps(200_000)
}

fn check_agreement(model: &GprsModel, rates: &[f64]) {
    let seq = sweep_arrival_rates(model.config(), rates, &opts()).expect("sequential sweep");
    let par = par_sweep_arrival_rates(model.config(), rates, &opts()).expect("parallel sweep");
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.rate, p.rate, "points must come back in rate order");
        let diff = (s.measures.carried_data_traffic - p.measures.carried_data_traffic).abs();
        assert!(
            diff <= 1e-8,
            "sequential and parallel sweeps disagree at rate {}: {diff:.3e}",
            s.rate
        );
    }
}

fn bench_sweep_pipeline(c: &mut Criterion) {
    println!("parallel sweep workers: {}", num_threads());
    for (label, model) in [
        ("small_15k", small_model()),
        ("medium_190k", medium_model()),
    ] {
        let rates = rate_grid(0.1, 1.0, 8);
        check_agreement(&model, &rates);
        let mut g = c.benchmark_group(format!("sweep8_{label}"));
        g.sample_size(3);
        g.bench_function("sequential", |b| {
            b.iter(|| sweep_arrival_rates(model.config(), &rates, &opts()).unwrap())
        });
        g.bench_function("parallel", |b| {
            b.iter(|| par_sweep_arrival_rates(model.config(), &rates, &opts()).unwrap())
        });
        g.finish();
    }
}

fn bench_parallel_solvers(c: &mut Criterion) {
    let model = small_model();
    let sparse = model.assemble_sparse().expect("assembly");
    let guess = model.product_form_guess();
    let sor = RedBlackSor::new(&sparse).expect("coloring");
    println!(
        "small fixture: {} states, {} nonzeros, {} colors",
        sparse.num_states(),
        sparse.num_nonzeros(),
        sor.num_colors()
    );
    let mut g = c.benchmark_group("solve_small_15k");
    g.sample_size(3);
    g.bench_function("point_gauss_seidel_seq", |b| {
        b.iter(|| solve_gauss_seidel(&sparse, Some(&guess), &opts()).unwrap())
    });
    g.bench_function("red_black_sor_par", |b| {
        b.iter(|| sor.solve(Some(&guess), &opts()).unwrap())
    });
    g.bench_function("jacobi_par", |b| {
        b.iter(|| solve_jacobi(&sparse, Some(&guess), &opts()).unwrap())
    });
    g.finish();
}

fn bench_assembly(c: &mut Criterion) {
    for (label, model) in [
        ("small_15k", small_model()),
        ("medium_190k", medium_model()),
    ] {
        let mut g = c.benchmark_group(format!("assemble_{label}"));
        g.sample_size(5);
        g.bench_function("sequential", |b| {
            b.iter(|| SparseGenerator::from_transitions(&model).unwrap())
        });
        g.bench_function("parallel", |b| {
            b.iter(|| SparseGenerator::from_transitions_par(&model, num_threads()).unwrap())
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_sweep_pipeline,
    bench_parallel_solvers,
    bench_assembly
);
criterion_main!(benches);
