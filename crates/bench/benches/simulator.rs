//! Discrete-event simulator throughput benchmarks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gprs_core::CellConfig;
use gprs_des::{SimTime, Simulation};
use gprs_sim::{GprsSimulator, RadioModel, SimConfig, SupervisionConfig};
use gprs_traffic::TrafficModel;

fn cell() -> CellConfig {
    CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(20)
        .max_gprs_sessions(8)
        .call_arrival_rate(0.5)
        .build()
        .unwrap()
}

fn short_run(radio: RadioModel, tcp: bool) -> u64 {
    let mut b = SimConfig::builder(cell())
        .seed(7)
        .warmup(50.0)
        .batches(2, 300.0)
        .radio(radio);
    if !tcp {
        b = b.without_tcp();
    }
    GprsSimulator::new(b.build()).run().events_processed
}

fn bench_network_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_simulator_650s");
    g.sample_size(10);
    g.bench_function("processor_sharing_tcp", |b| {
        b.iter(|| short_run(RadioModel::ProcessorSharing, true))
    });
    g.bench_function("tdma_blocks_tcp", |b| {
        b.iter(|| short_run(RadioModel::TdmaBlocks, true))
    });
    g.bench_function("processor_sharing_no_tcp", |b| {
        b.iter(|| short_run(RadioModel::ProcessorSharing, false))
    });
    // Ablation: what enabling load supervision costs. The per-epoch
    // decision work is O(cells) and negligible; the measured difference
    // vs the unsupervised run is behavioural — a supervised cell
    // reserves more PDCHs, carries more data, and so processes more
    // events per simulated second.
    g.bench_function("processor_sharing_tcp_supervised", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder(cell())
                .seed(7)
                .warmup(50.0)
                .batches(2, 300.0)
                .supervision(SupervisionConfig::default())
                .build();
            GprsSimulator::new(cfg).run().events_processed
        })
    });
    g.finish();
}

fn bench_event_engine(c: &mut Criterion) {
    // Raw calendar throughput: schedule/pop churn typical of the
    // simulator (timer-wheel style load).
    let mut g = c.benchmark_group("event_engine");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("schedule_pop_churn", |b| {
        b.iter(|| {
            let mut sim: Simulation<u64> = Simulation::new();
            let mut x = 88172645463325252u64;
            for i in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                sim.schedule_in((x % 1000) as f64 / 100.0, i);
                if i % 2 == 0 {
                    let _ = sim.next_event();
                }
            }
            while sim.next_event().is_some() {}
            sim.now()
        })
    });
    g.bench_function("cancel_heavy_churn", |b| {
        b.iter(|| {
            let mut sim: Simulation<u64> = Simulation::new();
            let mut pending = Vec::with_capacity(64);
            for i in 0..20_000u64 {
                let id = sim.schedule_in(1.0 + (i % 97) as f64, i);
                pending.push(id);
                if pending.len() >= 32 {
                    // Cancel half, like RTO timers being re-armed.
                    for id in pending.drain(..16) {
                        let _ = sim.cancel(id);
                    }
                }
                if i % 4 == 0 {
                    let _ = sim.next_event();
                }
            }
            while sim.next_event().is_some() {}
            sim.now()
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("statistics");
    let n = 1_000_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("time_weighted_updates", |b| {
        b.iter(|| {
            let mut tw = gprs_des::stats::TimeWeighted::new(SimTime::ZERO, 0.0);
            for i in 0..n {
                tw.set(SimTime::new(i as f64 * 0.001), (i % 20) as f64);
            }
            tw.average(SimTime::new(n as f64 * 0.001))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_network_sim, bench_event_engine, bench_stats);
criterion_main!(benches);
