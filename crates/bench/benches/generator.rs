//! Generator benchmarks: transition enumeration and assembly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gprs_bench::{medium_model, small_model};
use gprs_ctmc::{IncomingTransitions, SparseGenerator, Transitions};

fn bench_enumeration(c: &mut Criterion) {
    let model = medium_model();
    let n = model.num_states();
    let mut g = c.benchmark_group("transition_enumeration_190k");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    g.bench_function("forward_full_pass", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for s in 0..n {
                model.for_each_outgoing(s, &mut |_, rate| acc += rate);
            }
            acc
        })
    });
    g.bench_function("reverse_full_pass", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for s in 0..n {
                model.for_each_incoming(s, &mut |_, rate| acc += rate);
            }
            acc
        })
    });
    g.finish();
}

fn bench_sparse_assembly(c: &mut Criterion) {
    let model = small_model();
    let mut g = c.benchmark_group("sparse_assembly_15k");
    g.sample_size(20);
    g.bench_function("assemble_csr", |b| {
        b.iter(|| model.assemble_sparse().unwrap())
    });
    let sparse = model.assemble_sparse().unwrap();
    g.bench_function("rebuild_from_transitions", |b| {
        b.iter(|| SparseGenerator::from_transitions(&sparse).unwrap())
    });
    g.finish();
}

fn bench_state_codec(c: &mut Criterion) {
    let model = medium_model();
    let space = *model.space();
    let n = space.num_states();
    let mut g = c.benchmark_group("state_codec");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("decode_encode_round_trip", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for idx in 0..n {
                let s = space.decode(idx);
                acc = acc.wrapping_add(space.index(s));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_sparse_assembly,
    bench_state_codec
);
criterion_main!(benches);
