//! Closed-form queueing benchmarks: Erlang recursion, distributions,
//! handover balancing, traffic analytics, and the IPP/M/c/K oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gprs_queueing::erlang::{erlang_b, mmcc_distribution};
use gprs_queueing::handover::{balance_default, HandoverParams};
use gprs_queueing::IppMckQueue;
use gprs_traffic::analysis::{Hyperexponential, Mmpp2};
use gprs_traffic::TrafficModel;

fn bench_erlang(c: &mut Criterion) {
    let mut g = c.benchmark_group("erlang_b");
    for servers in [20usize, 150, 1000] {
        g.bench_with_input(
            BenchmarkId::new("blocking", servers),
            &servers,
            |b, &servers| b.iter(|| erlang_b(servers, servers as f64 * 0.9).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("distribution", servers),
            &servers,
            |b, &servers| b.iter(|| mmcc_distribution(servers, servers as f64 * 0.9).unwrap()),
        );
    }
    g.finish();
}

fn bench_handover_balance(c: &mut Criterion) {
    let mut g = c.benchmark_group("handover_balance");
    let gsm = HandoverParams {
        new_arrival_rate: 0.95,
        completion_rate: 1.0 / 120.0,
        handover_rate: 1.0 / 60.0,
        servers: 19,
    };
    g.bench_function("gsm_19_servers", |b| {
        b.iter(|| balance_default(&gsm).unwrap())
    });
    let gprs = HandoverParams {
        new_arrival_rate: 0.05,
        completion_rate: 1.0 / 2122.5,
        handover_rate: 1.0 / 120.0,
        servers: 150,
    };
    g.bench_function("gprs_150_sessions", |b| {
        b.iter(|| balance_default(&gprs).unwrap())
    });
    g.finish();
}

fn bench_traffic_analytics(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic_analytics");
    let ipp = TrafficModel::Model3.params().to_ipp();
    g.bench_function("aggregate_150_steady_state", |b| {
        b.iter(|| ipp.aggregate(150).steady_state())
    });
    g.bench_function("binomial_pmf_150", |b| {
        b.iter(|| gprs_traffic::mmpp::binomial_pmf(150, 0.5))
    });
    g.bench_function("superposition_fit_50", |b| {
        b.iter(|| Mmpp2::fit_superposition(&ipp, 50))
    });
    g.bench_function("kuczura_h2_equivalence", |b| {
        b.iter(|| Hyperexponential::from_ipp(&ipp))
    });
    g.finish();
}

fn bench_ipp_mck(c: &mut Criterion) {
    // Direct QBD elimination scales linearly in the buffer size; the
    // paper-scale case (K = 100) is microseconds — the point of having a
    // closed-form oracle next to the big iterative chain.
    let mut g = c.benchmark_group("ipp_mck_oracle");
    for capacity in [25usize, 100, 400] {
        g.bench_with_input(
            BenchmarkId::new("solve", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| IppMckQueue::new(0.32, 0.32, 8.33, 4, 3.49, capacity).unwrap())
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_erlang,
    bench_handover_balance,
    bench_traffic_analytics,
    bench_ipp_mck
);
criterion_main!(benches);
