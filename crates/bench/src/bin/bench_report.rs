//! Machine-readable performance report:
//! `bench-report [--quick] [OUTPUT.json]`.
//!
//! Times the repeated-solve pipelines the symbolic/numeric split
//! targets — arrival-rate sweeps (template refill vs historical
//! per-point rebuild), the 7-cell cluster fixed point, a metro-scale
//! corridor graph sweep (shape-keyed template dedup + Gauss–Seidel
//! colour ordering), and the parallel replication engine — and writes
//! a single JSON document
//! (`BENCH_sweep.json` by default) with points-per-second throughput
//! for each. CI uploads the file as an artifact, so the repository
//! accumulates a perf trajectory over time; the numbers are wall-clock
//! on whatever runner executes them, meaningful as a series rather
//! than as absolutes.
//!
//! Two sizes of the same workloads (the `"mode"` field records which
//! one a report ran):
//!
//! * the default sizing finishes in a couple of minutes on one CI core
//!   and feeds the scheduled nightly job;
//! * `--quick` shrinks grids and replication counts to tens of seconds
//!   so the tier-1 per-push job can seed the trajectory on **every**
//!   push, not only on the nightly schedule. Quick points are
//!   comparable with other quick points.
//!
//! Determinism is asserted (sequential vs parallel sweeps) before
//! timing in both modes, so a report is also a cheap correctness
//! smoke.

use gprs_bench::{figure_sweep_cell, sweep_rebuild};
use gprs_core::cluster::{ClusterModel, ClusterSolveOptions, SweepOrdering};
use gprs_core::sweep::{par_sweep_arrival_rates_threads, rate_grid, sweep_arrival_rates};
use gprs_core::{CellConfig, CellGraph, Scenario};
use gprs_ctmc::SolveOptions;
use gprs_exec::num_threads;
use gprs_sim::{run_replications, ReplicationOptions, SimConfig, TargetMeasure};
use gprs_traffic::TrafficModel;
use std::fmt::Write as _;
use std::time::Instant;

/// Times `f` once and returns (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_sweep.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("usage: bench-report [--quick] [OUTPUT.json]");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; usage: bench-report [--quick] [OUTPUT.json]");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }
    let threads = num_threads();
    let solve_opts = SolveOptions::quick().with_max_sweeps(200_000);

    // --- Sweep: template refill vs historical per-point rebuild, on
    // the same shared fixture the `sweep` criterion bench times. ---
    let base = if quick {
        // Same shape family, smaller state space: the quick report
        // must finish within the tier-1 budget.
        let mut cell = figure_sweep_cell();
        cell.buffer_capacity = 15;
        cell.max_gprs_sessions = 8;
        cell
    } else {
        figure_sweep_cell()
    };
    let rates = rate_grid(0.05, 1.0, if quick { 8 } else { 20 });
    let (rebuild_s, _) = timed(|| sweep_rebuild(&base, &rates, &solve_opts));
    let (refill_s, seq) = timed(|| sweep_arrival_rates(&base, &rates, &solve_opts).expect("sweep"));
    // Determinism smoke: the parallel sweep must match bitwise.
    let par = par_sweep_arrival_rates_threads(&base, &rates, &solve_opts, threads.max(2))
        .expect("par sweep");
    for (p, s) in par.iter().zip(&seq) {
        assert_eq!(p.measures, s.measures, "par sweep diverged from seq");
    }
    let sweep_rebuild_pps = rates.len() as f64 / rebuild_s;
    let sweep_refill_pps = rates.len() as f64 / refill_s;

    // --- Cluster: hot-spot fixed point (template path end to end). ---
    let ring = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(12)
        .max_gprs_sessions(5)
        .call_arrival_rate(0.3)
        .build()
        .expect("valid config");
    let ring = if quick {
        let mut c = ring;
        c.buffer_capacity = 8;
        c.max_gprs_sessions = 3;
        c
    } else {
        ring
    };
    let cluster = ClusterModel::hot_spot(ring, 0.6).expect("valid cluster");
    let cluster_opts = ClusterSolveOptions::quick()
        .with_solve(solve_opts.clone())
        .with_threads(threads);
    let (cluster_s, solved) = timed(|| cluster.solve(&cluster_opts).expect("cluster solve"));
    // "Points" = per-cell CTMC solves performed across outer iterations.
    let cluster_cell_solves = solved.iterations() * solved.cells().len();
    let cluster_pps = cluster_cell_solves as f64 / cluster_s;

    // --- Graph sweep: a metro-scale corridor (5 cell kinds) through
    // the colour-ordered Gauss–Seidel sweep and the shape-keyed
    // template registry — the scaling path for city-sized topologies. ---
    let metro_n = if quick { 100 } else { 400 };
    let metro_cells: Vec<CellConfig> = (0..metro_n)
        .map(|i| {
            let mut c = CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .total_channels(6)
                .reserved_pdchs(1)
                .buffer_capacity(6 + (i % 5))
                .max_gprs_sessions(3)
                .call_arrival_rate(0.25 + 0.2 * i as f64 / metro_n as f64)
                .build()
                .expect("valid metro cell");
            c.gprs_fraction = 0.05;
            c
        })
        .collect();
    let metro = ClusterModel::from_graph(
        CellGraph::corridor(metro_n).expect("valid corridor"),
        metro_cells,
    )
    .expect("valid metro cluster");
    let metro_opts = ClusterSolveOptions::quick()
        .with_solve(solve_opts.clone())
        .with_threads(threads)
        .with_ordering(SweepOrdering::GaussSeidel);
    let (metro_s, metro_solved) = timed(|| metro.solve(&metro_opts).expect("metro solve"));
    let metro_cell_solves = metro_solved.iterations() * metro_solved.cells().len();
    let metro_pps = metro_cell_solves as f64 / metro_s;
    assert_eq!(
        metro_solved.symbolic_setups(),
        5,
        "shape-keyed dedup must collapse the corridor to its 5 cell kinds"
    );

    // --- Replication engine: fixed replication count. ---
    let sim_cell = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .total_channels(8)
        .buffer_capacity(15)
        .max_gprs_sessions(4)
        .call_arrival_rate(0.3)
        .build()
        .expect("valid config");
    let sim_cfg = SimConfig::for_scenario(&Scenario::homogeneous(sim_cell).expect("scenario"))
        .expect("lowerable scenario")
        .seed(2024)
        .warmup(100.0)
        .batches(2, if quick { 150.0 } else { 300.0 })
        .build();
    let replications = if quick { 3usize } else { 6usize };
    let rep_opts = ReplicationOptions::new(0.01, replications, replications)
        .with_target(TargetMeasure::CarriedVoiceTraffic)
        .with_threads(threads);
    let (rep_s, results) = timed(|| run_replications(&sim_cfg, &rep_opts));
    assert_eq!(results.replications, replications);
    let replication_rps = replications as f64 / rep_s;

    // --- Emit JSON (hand-rolled: the workspace is dependency-free). ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"gprs-bench-report/v1\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"sweep\": {{");
    let _ = writeln!(json, "    \"points\": {},", rates.len());
    let _ = writeln!(
        json,
        "    \"rebuild_points_per_sec\": {sweep_rebuild_pps:.4},"
    );
    let _ = writeln!(
        json,
        "    \"refill_points_per_sec\": {sweep_refill_pps:.4},"
    );
    let _ = writeln!(
        json,
        "    \"refill_speedup\": {:.4}",
        sweep_refill_pps / sweep_rebuild_pps
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cluster\": {{");
    let _ = writeln!(json, "    \"cell_solves\": {cluster_cell_solves},");
    let _ = writeln!(json, "    \"outer_iterations\": {},", solved.iterations());
    let _ = writeln!(json, "    \"cell_solves_per_sec\": {cluster_pps:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"graph_sweep\": {{");
    let _ = writeln!(json, "    \"cells\": {metro_n},");
    let _ = writeln!(
        json,
        "    \"symbolic_setups\": {},",
        metro_solved.symbolic_setups()
    );
    let _ = writeln!(
        json,
        "    \"outer_iterations\": {},",
        metro_solved.iterations()
    );
    let _ = writeln!(json, "    \"cell_solves\": {metro_cell_solves},");
    let _ = writeln!(json, "    \"cell_solves_per_sec\": {metro_pps:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replication\": {{");
    let _ = writeln!(json, "    \"replications\": {replications},");
    let _ = writeln!(json, "    \"replications_per_sec\": {replication_rps:.4}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
