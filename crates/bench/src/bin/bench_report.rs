//! Machine-readable performance report:
//! `bench-report [--quick] [--check BASELINE.json] [OUTPUT.json]`.
//!
//! Times the repeated-solve pipelines the symbolic/numeric split
//! targets — arrival-rate sweeps (template refill vs historical
//! per-point rebuild), the cache-blocked sweep kernel against the
//! scalar trait-dispatched one, the predict-and-verify surrogate's
//! hit rate on a dense figure grid, the 7-cell cluster fixed point, a
//! metro-scale corridor graph sweep (shape-keyed template dedup +
//! Gauss–Seidel colour ordering), and the parallel replication engine
//! — and writes a single JSON document
//! (`BENCH_sweep.json` by default) with points-per-second throughput
//! for each. CI uploads the file as an artifact, so the repository
//! accumulates a perf trajectory over time; the numbers are wall-clock
//! on whatever runner executes them, meaningful as a series rather
//! than as absolutes.
//!
//! The document's `"schema"` field versions its shape
//! (`gprs-bench-report/v4` since the `shard` section landed; `v3`
//! added `campaign`), so trajectory tooling can evolve the format
//! without guessing.
//!
//! Two sizes of the same workloads (the `"mode"` field records which
//! one a report ran):
//!
//! * the default sizing finishes in a couple of minutes on one CI core
//!   and feeds the scheduled nightly job;
//! * `--quick` shrinks grids and replication counts to tens of seconds
//!   so the tier-1 per-push job can seed the trajectory on **every**
//!   push, not only on the nightly schedule. Quick points are
//!   comparable with other quick points.
//!
//! `--check BASELINE.json` turns the run into a perf-regression gate:
//! after measuring, the fresh figure-sweep throughput is compared
//! against the baseline's `refill_points_per_sec`, and the metro
//! graph-sweep throughput against the baseline `graph_sweep` section's
//! `cell_solves_per_sec`; the process exits non-zero if either dropped
//! below 75% of its baseline (wall-clock noise on shared runners makes
//! a tighter bound flaky). Baselines predating the `graph_sweep`
//! section skip that gate with a note. In check mode the report is
//! written to `BENCH_report.json` by default so the committed baseline
//! is never clobbered.
//!
//! Determinism is asserted (sequential vs parallel sweeps) before
//! timing in both modes, so a report is also a cheap correctness
//! smoke.

use gprs_bench::{figure_sweep_cell, sweep_rebuild};
use gprs_core::cluster::{ClusterModel, ClusterSolveOptions, SweepOrdering};
use gprs_core::sweep::{
    par_sweep_arrival_rates_threads, rate_grid, sweep_arrival_rates, sweep_arrival_rates_mode,
};
use gprs_core::template::{GeneratorTemplate, WarmStart};
use gprs_core::{CellConfig, CellGraph, Scenario, SolveRung};
use gprs_ctmc::SolveOptions;
use gprs_exec::num_threads;
use gprs_sim::{run_replications, ReplicationOptions, SimConfig, TargetMeasure};
use gprs_traffic::TrafficModel;
use std::fmt::Write as _;
use std::time::Instant;

/// Times `f` once and returns (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Pulls the first `"key": <number>` out of a JSON document. Enough
/// for the flat reports this binary writes itself (the workspace is
/// dependency-free, so no JSON parser to lean on).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let rest = &rest[rest.find(':')? + 1..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// Like [`extract_number`], but starts looking after the first
/// occurrence of `"section"` — disambiguates keys that repeat across
/// the report's sections (e.g. `cell_solves_per_sec` appears in both
/// `cluster` and `graph_sweep`).
fn extract_number_in(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    extract_number(&json[at..], key)
}

const USAGE: &str = "usage: bench-report [--quick] [--check BASELINE.json] [OUTPUT.json]";

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a baseline path; {USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; {USAGE}");
                std::process::exit(2);
            }
            path => out_path = Some(path.to_string()),
        }
    }
    // Never clobber the committed baseline when gating against it.
    let out_path = out_path.unwrap_or_else(|| {
        if check_path.is_some() {
            "BENCH_report.json".to_string()
        } else {
            "BENCH_sweep.json".to_string()
        }
    });
    let threads = num_threads();
    let solve_opts = SolveOptions::quick().with_max_sweeps(200_000);

    // --- Sweep: template refill vs historical per-point rebuild, on
    // the same shared fixture the `sweep` criterion bench times. ---
    let base = if quick {
        // Same shape family, smaller state space: the quick report
        // must finish within the tier-1 budget.
        let mut cell = figure_sweep_cell();
        cell.buffer_capacity = 15;
        cell.max_gprs_sessions = 8;
        cell
    } else {
        figure_sweep_cell()
    };
    let rates = rate_grid(0.05, 1.0, if quick { 8 } else { 20 });
    let (rebuild_s, _) = timed(|| sweep_rebuild(&base, &rates, &solve_opts));
    let (refill_s, seq) = timed(|| sweep_arrival_rates(&base, &rates, &solve_opts).expect("sweep"));
    // Determinism smoke: the parallel sweep must match bitwise.
    let par = par_sweep_arrival_rates_threads(&base, &rates, &solve_opts, threads.max(2))
        .expect("par sweep");
    for (p, s) in par.iter().zip(&seq) {
        assert_eq!(p.measures, s.measures, "par sweep diverged from seq");
    }
    let sweep_rebuild_pps = rates.len() as f64 / rebuild_s;
    let sweep_refill_pps = rates.len() as f64 / refill_s;

    // --- Kernel microbench: repeated cold solves of the figure cell,
    // scalar (trait-dispatched) vs cache-blocked (phase-major tables).
    // Cold starts so every rep runs the full sweep count; the blocked
    // kernel must agree on that count (it is bit-identical), which is
    // asserted before the rates are trusted. ---
    let kernel_reps = if quick { 8 } else { 20 };
    let kernel_time = |blocked: bool| -> (f64, usize, usize) {
        let mut template = GeneratorTemplate::new(&base).expect("template");
        template.set_blocked_kernel(Some(blocked));
        let model = template.model_for(base.clone()).expect("model");
        // One warm-up solve so allocations and captures are in place.
        template
            .solve(&model, &solve_opts, WarmStart::Cold)
            .expect("warm-up solve");
        template.reset_stats();
        let (secs, _) = timed(|| {
            for _ in 0..kernel_reps {
                template
                    .solve(&model, &solve_opts, WarmStart::Cold)
                    .expect("kernel solve");
            }
        });
        (
            secs,
            template.stats().total_sweeps,
            template.stationary().len(),
        )
    };
    let (scalar_s, scalar_sweeps, kernel_rows) = kernel_time(false);
    let (blocked_s, blocked_sweeps, blocked_rows) = kernel_time(true);
    assert_eq!(
        scalar_sweeps, blocked_sweeps,
        "blocked kernel must run the exact scalar sweep count"
    );
    assert_eq!(kernel_rows, blocked_rows);
    let scalar_sweeps_per_sec = scalar_sweeps as f64 / scalar_s;
    let blocked_sweeps_per_sec = blocked_sweeps as f64 / blocked_s;
    let scalar_ns_per_row = scalar_s * 1e9 / (scalar_sweeps as f64 * kernel_rows as f64);
    let blocked_ns_per_row = blocked_s * 1e9 / (blocked_sweeps as f64 * kernel_rows as f64);

    // --- Surrogate hit rate: the extended figure grid in
    // predict-and-verify mode. Chunk heads always solve cold, so the
    // hit rate can never reach 1; what lands here is the fraction of
    // figure points served straight from the verified extrapolation. ---
    let surrogate_rates = rate_grid(0.05, 1.0, if quick { 32 } else { 64 });
    let surrogate_pts =
        sweep_arrival_rates_mode(&base, &surrogate_rates, &solve_opts, WarmStart::Predicted)
            .expect("surrogate sweep");
    let surrogate_hits = surrogate_pts
        .iter()
        .filter(|p| p.health.rung == SolveRung::Surrogate)
        .count();
    let surrogate_hit_rate = surrogate_hits as f64 / surrogate_pts.len() as f64;

    // --- Cluster: hot-spot fixed point (template path end to end). ---
    let ring = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(12)
        .max_gprs_sessions(5)
        .call_arrival_rate(0.3)
        .build()
        .expect("valid config");
    let ring = if quick {
        let mut c = ring;
        c.buffer_capacity = 8;
        c.max_gprs_sessions = 3;
        c
    } else {
        ring
    };
    let cluster = ClusterModel::hot_spot(ring, 0.6).expect("valid cluster");
    let cluster_opts = ClusterSolveOptions::quick()
        .with_solve(solve_opts.clone())
        .with_threads(threads);
    let (cluster_s, solved) = timed(|| cluster.solve(&cluster_opts).expect("cluster solve"));
    // "Points" = per-cell CTMC solves performed across outer iterations.
    let cluster_cell_solves = solved.iterations() * solved.cells().len();
    let cluster_pps = cluster_cell_solves as f64 / cluster_s;
    // Same fixed point with the predict-and-verify surrogate on: outer
    // iterations near convergence barely move the arrival vector, so
    // the extrapolated iterate passes its residual check and whole cell
    // solves are served without solver sweeps.
    let (cluster_surr_s, surr_solved) = timed(|| {
        cluster
            .solve(&cluster_opts.clone().with_surrogate(true))
            .expect("surrogate cluster solve")
    });
    let cluster_surr_cell_solves = surr_solved.iterations() * surr_solved.cells().len();
    let cluster_surr_pps = cluster_surr_cell_solves as f64 / cluster_surr_s;
    let cluster_surr_hit_rate =
        surr_solved.surrogate_solves() as f64 / cluster_surr_cell_solves as f64;

    // --- Graph sweep: a metro-scale corridor (5 cell kinds) through
    // the colour-ordered Gauss–Seidel sweep and the shape-keyed
    // template registry — the scaling path for city-sized topologies. ---
    let metro_n = if quick { 100 } else { 400 };
    let metro_cells: Vec<CellConfig> = (0..metro_n)
        .map(|i| {
            let mut c = CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .total_channels(6)
                .reserved_pdchs(1)
                .buffer_capacity(6 + (i % 5))
                .max_gprs_sessions(3)
                .call_arrival_rate(0.25 + 0.2 * i as f64 / metro_n as f64)
                .build()
                .expect("valid metro cell");
            c.gprs_fraction = 0.05;
            c
        })
        .collect();
    let metro = ClusterModel::from_graph(
        CellGraph::corridor(metro_n).expect("valid corridor"),
        metro_cells,
    )
    .expect("valid metro cluster");
    let metro_opts = ClusterSolveOptions::quick()
        .with_solve(solve_opts.clone())
        .with_threads(threads)
        .with_ordering(SweepOrdering::GaussSeidel);
    let (metro_s, metro_solved) = timed(|| metro.solve(&metro_opts).expect("metro solve"));
    let metro_cell_solves = metro_solved.iterations() * metro_solved.cells().len();
    let metro_pps = metro_cell_solves as f64 / metro_s;
    assert_eq!(
        metro_solved.symbolic_setups(),
        5,
        "shape-keyed dedup must collapse the corridor to its 5 cell kinds"
    );

    // --- Sharded fixed point: the 1000-cell corridor through the
    // persistent partition workers vs the single-scan baseline. Small
    // per-cell state spaces put the solve in the overhead-dominated
    // regime metro layouts live in (per-solve fixed costs — capture,
    // measures extraction, decode — dwarf the CTMC sweeps), which is
    // exactly what the shard engine's owned templates eliminate.
    // Identical options on both sides, so the bitwise contract is
    // asserted on the measured pair before the rates are trusted. ---
    let shard_n = 1000usize;
    let shard_cells: Vec<CellConfig> = (0..shard_n)
        .map(|i| {
            CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .total_channels(6)
                .reserved_pdchs(1)
                .buffer_capacity(8)
                .max_gprs_sessions(3)
                .call_arrival_rate(0.2 + 0.02 * (i % 7) as f64)
                .build()
                .expect("valid shard-bench cell")
        })
        .collect();
    let shard_model = ClusterModel::from_graph(
        CellGraph::corridor(shard_n).expect("valid corridor"),
        shard_cells,
    )
    .expect("valid shard-bench cluster");
    // check_every(1) converges each cell solve at the earliest sweep
    // and the predict-and-verify surrogate serves the late, tiny-step
    // iterations of the deep 1e-14 fixed point from verified
    // extrapolations, keeping the workload overhead-dominated; threads
    // pinned to 1 so the comparison isolates the shard engine's
    // per-solve savings from plain thread fan-out.
    let shard_opts = ClusterSolveOptions::quick()
        .with_solve(solve_opts.clone().with_check_every(1))
        .with_surrogate(true)
        .with_tolerance(1e-14)
        .with_threads(1);
    // Best-of-3, interleaved: each round times the baseline and every
    // shard count back to back, so page-cache warm-up and scheduler
    // noise land on all columns alike; the per-column minimum is the
    // steady-state rate.
    let shard_counts = [2usize, 4];
    let mut shard_base_s = f64::INFINITY;
    let mut shard_secs = vec![f64::INFINITY; shard_counts.len()];
    let mut shard_first = None;
    for _ in 0..3 {
        let (secs, solved) = timed(|| {
            shard_model
                .solve(&shard_opts.clone().with_shards(1))
                .expect("shard baseline solve")
        });
        shard_base_s = shard_base_s.min(secs);
        let shard_baseline = shard_first.get_or_insert(solved);
        for (slot, &k) in shard_counts.iter().enumerate() {
            let (secs, sharded) = timed(|| {
                shard_model
                    .solve(&shard_opts.clone().with_shards(k))
                    .expect("sharded solve")
            });
            assert_eq!(
                sharded.iterations(),
                shard_baseline.iterations(),
                "sharded solve must match the baseline iteration count"
            );
            for (a, b) in sharded.cells().iter().zip(shard_baseline.cells()) {
                assert_eq!(
                    a.gsm_handover_in.to_bits(),
                    b.gsm_handover_in.to_bits(),
                    "sharded solve diverged bitwise from the baseline"
                );
            }
            shard_secs[slot] = shard_secs[slot].min(secs);
        }
    }
    let shard_baseline = shard_first.expect("baseline solved");
    let shard_cell_solves = shard_baseline.iterations() * shard_n;
    let shard_baseline_pps = shard_cell_solves as f64 / shard_base_s;
    let shard_pps: Vec<f64> = shard_secs
        .iter()
        .map(|&s| shard_cell_solves as f64 / s)
        .collect();
    let shard_best_speedup = shard_pps
        .iter()
        .fold(0.0f64, |m, &p| m.max(p / shard_baseline_pps));

    // --- Replication engine: fixed replication count. ---
    let sim_cell = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .total_channels(8)
        .buffer_capacity(15)
        .max_gprs_sessions(4)
        .call_arrival_rate(0.3)
        .build()
        .expect("valid config");
    let sim_cfg = SimConfig::for_scenario(&Scenario::homogeneous(sim_cell).expect("scenario"))
        .expect("lowerable scenario")
        .seed(2024)
        .warmup(100.0)
        .batches(2, if quick { 150.0 } else { 300.0 })
        .build();
    let replications = if quick { 3usize } else { 6usize };
    let rep_opts = ReplicationOptions::new(0.01, replications, replications)
        .with_target(TargetMeasure::CarriedVoiceTraffic)
        .with_threads(threads);
    let (rep_s, results) = timed(|| run_replications(&sim_cfg, &rep_opts));
    assert_eq!(results.replications, replications);
    let replication_rps = replications as f64 / rep_s;

    // --- Campaign engine: the deterministic demo campaign through the
    // supervised runner (in memory, no journal) — items/sec for the
    // whole batch path: catching pool, retry ladder, shared template
    // registry. The demo mixes three template shapes and three
    // topologies, so the registry's dedup shows up in the numbers. ---
    let campaign_spec = gprs_campaign::demo_spec(if quick { 8 } else { 24 });
    let campaign_cfg = gprs_campaign::RunnerConfig {
        threads,
        ..gprs_campaign::RunnerConfig::default()
    };
    let campaign_report = gprs_campaign::run_campaign(&campaign_spec, None, &campaign_cfg)
        .expect("demo campaign runs");
    assert_eq!(
        campaign_report.failed(),
        0,
        "demo campaign must solve cleanly"
    );

    // --- Emit JSON (hand-rolled: the workspace is dependency-free). ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"gprs-bench-report/v4\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"sweep\": {{");
    let _ = writeln!(json, "    \"points\": {},", rates.len());
    let _ = writeln!(
        json,
        "    \"rebuild_points_per_sec\": {sweep_rebuild_pps:.4},"
    );
    let _ = writeln!(
        json,
        "    \"refill_points_per_sec\": {sweep_refill_pps:.4},"
    );
    let _ = writeln!(
        json,
        "    \"refill_speedup\": {:.4}",
        sweep_refill_pps / sweep_rebuild_pps
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"kernel\": {{");
    let _ = writeln!(json, "    \"rows\": {kernel_rows},");
    let _ = writeln!(json, "    \"cold_solves\": {kernel_reps},");
    let _ = writeln!(
        json,
        "    \"scalar_sweeps_per_sec\": {scalar_sweeps_per_sec:.4},"
    );
    let _ = writeln!(
        json,
        "    \"blocked_sweeps_per_sec\": {blocked_sweeps_per_sec:.4},"
    );
    let _ = writeln!(json, "    \"scalar_ns_per_row\": {scalar_ns_per_row:.4},");
    let _ = writeln!(json, "    \"blocked_ns_per_row\": {blocked_ns_per_row:.4},");
    let _ = writeln!(
        json,
        "    \"blocked_speedup\": {:.4},",
        blocked_sweeps_per_sec / scalar_sweeps_per_sec
    );
    let _ = writeln!(
        json,
        "    \"surrogate_grid_points\": {},",
        surrogate_pts.len()
    );
    let _ = writeln!(json, "    \"surrogate_hits\": {surrogate_hits},");
    let _ = writeln!(json, "    \"surrogate_hit_rate\": {surrogate_hit_rate:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cluster\": {{");
    let _ = writeln!(json, "    \"cell_solves\": {cluster_cell_solves},");
    let _ = writeln!(json, "    \"outer_iterations\": {},", solved.iterations());
    let _ = writeln!(json, "    \"cell_solves_per_sec\": {cluster_pps:.4},");
    let _ = writeln!(
        json,
        "    \"surrogate_solves\": {},",
        surr_solved.surrogate_solves()
    );
    let _ = writeln!(
        json,
        "    \"surrogate_hit_rate\": {cluster_surr_hit_rate:.4},"
    );
    let _ = writeln!(
        json,
        "    \"surrogate_cell_solves_per_sec\": {cluster_surr_pps:.4}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"graph_sweep\": {{");
    let _ = writeln!(json, "    \"cells\": {metro_n},");
    let _ = writeln!(
        json,
        "    \"symbolic_setups\": {},",
        metro_solved.symbolic_setups()
    );
    let _ = writeln!(
        json,
        "    \"outer_iterations\": {},",
        metro_solved.iterations()
    );
    let _ = writeln!(json, "    \"cell_solves\": {metro_cell_solves},");
    let _ = writeln!(json, "    \"cell_solves_per_sec\": {metro_pps:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"shard\": {{");
    let _ = writeln!(json, "    \"cells\": {shard_n},");
    let _ = writeln!(json, "    \"tolerance\": 1e-14,");
    let _ = writeln!(json, "    \"surrogate\": true,");
    let _ = writeln!(
        json,
        "    \"outer_iterations\": {},",
        shard_baseline.iterations()
    );
    let _ = writeln!(json, "    \"cell_solves\": {shard_cell_solves},");
    let _ = writeln!(
        json,
        "    \"baseline_cell_solves_per_sec\": {shard_baseline_pps:.4},"
    );
    let _ = writeln!(
        json,
        "    \"shard_counts\": [{}],",
        shard_counts
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "    \"sharded_cell_solves_per_sec\": [{}],",
        shard_pps
            .iter()
            .map(|p| format!("{p:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"best_speedup\": {shard_best_speedup:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replication\": {{");
    let _ = writeln!(json, "    \"replications\": {replications},");
    let _ = writeln!(json, "    \"replications_per_sec\": {replication_rps:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"campaign\": {{");
    let _ = writeln!(json, "    \"items\": {},", campaign_report.results.len());
    let _ = writeln!(json, "    \"solved\": {},", campaign_report.solved());
    let _ = writeln!(json, "    \"degraded\": {},", campaign_report.degraded());
    let _ = writeln!(json, "    \"failed\": {},", campaign_report.failed());
    let _ = writeln!(json, "    \"retries\": {},", campaign_report.retries);
    let _ = writeln!(
        json,
        "    \"surrogate_solves\": {},",
        campaign_report.surrogate_solves()
    );
    let _ = writeln!(
        json,
        "    \"template_setups\": {},",
        campaign_report.template_setups
    );
    let _ = writeln!(
        json,
        "    \"template_evictions\": {},",
        campaign_report.template_evictions
    );
    let _ = writeln!(
        json,
        "    \"items_per_sec\": {:.4}",
        campaign_report.items_per_sec()
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("wrote {out_path}");
    print!("{json}");

    // --- Perf-regression gate: the fresh figure-sweep and metro
    // graph-sweep throughputs must each hold at least 75% of the
    // committed baseline's. ---
    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline_refill = extract_number(&baseline, "refill_points_per_sec")
            .unwrap_or_else(|| panic!("no refill_points_per_sec in {baseline_path}"));
        let floor = 0.75 * baseline_refill;
        if sweep_refill_pps < floor {
            eprintln!(
                "PERF REGRESSION: refill sweep ran at {sweep_refill_pps:.2} points/s, \
                 below 75% of the {baseline_refill:.2} baseline ({baseline_path})"
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf check OK: refill {sweep_refill_pps:.2} points/s vs baseline \
             {baseline_refill:.2} (floor {floor:.2})"
        );
        // Metro-scale gate: the corridor graph sweep. Absent from
        // baselines older than schema v2 — skip with a note rather
        // than fail runs against a stale baseline.
        match extract_number_in(&baseline, "graph_sweep", "cell_solves_per_sec") {
            Some(baseline_metro) => {
                let floor = 0.75 * baseline_metro;
                if metro_pps < floor {
                    eprintln!(
                        "PERF REGRESSION: graph sweep ran at {metro_pps:.2} cell-solves/s, \
                         below 75% of the {baseline_metro:.2} baseline ({baseline_path})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "perf check OK: graph sweep {metro_pps:.2} cell-solves/s vs baseline \
                     {baseline_metro:.2} (floor {floor:.2})"
                );
            }
            None => eprintln!(
                "perf check: baseline {baseline_path} has no graph_sweep section; \
                 skipping the metro gate"
            ),
        }
    }
}
