//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the reproduction's computational kernels:
//!
//! * `sweep` — the symbolic/numeric split: the chunked template-refill
//!   sweep vs the historical per-point rebuild on the figure workload
//!   (target: refill ≥ 2× rebuild), plus the cluster-style repeated
//!   cell solve. Bit-identity (refill vs rebuild, seq vs par at 1/2/8
//!   threads) is asserted before timing.
//! * `solver` — steady-state solver comparison (block tridiagonal vs
//!   point Gauss–Seidel vs GTH) across state-space sizes — the ablation
//!   behind DESIGN.md's solver choice.
//! * `parallel` — sequential vs parallel pipeline: 8-point sweeps
//!   fanned out across threads, red-black SOR / Jacobi vs sequential
//!   Gauss–Seidel, and row-parallel sparse assembly, at the
//!   [`small_model`] and [`medium_model`] fixtures.
//! * `cluster` — the heterogeneous 7-cell fixed point: per-iteration
//!   cell solves sequential vs thread-parallel, plus the load-scale
//!   sweep (determinism is asserted before timing).
//! * `replication` — the wave-parallel replication engine: a fixed
//!   count of simulator replications at 1/2/4/8 threads, recording the
//!   scaling efficiency of the shared `gprs-exec` work queue
//!   (determinism asserted before timing).
//! * `generator` — transition enumeration and sparse assembly
//!   throughput.
//! * `simulator` — discrete-event throughput (events/s) for both radio
//!   fidelities and with/without TCP.
//! * `queueing` — Erlang-B, M/M/c/c distributions and handover
//!   balancing.
//! * `figures` — a `harness = false` target that regenerates every
//!   paper figure at quick scale, printing the same series the paper
//!   plots (so `cargo bench` exercises the full reproduction path).
//!
//! Besides the benches, the crate ships the `bench-report` binary
//! (`cargo run --release -p gprs-bench --bin bench-report`): it times
//! the sweep (refill vs rebuild), cluster and replication pipelines and
//! writes machine-readable points/sec JSON (`BENCH_sweep.json`), which
//! the scheduled CI job uploads as the repository's perf trajectory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use gprs_core::{CellConfig, GprsModel};
use gprs_traffic::TrafficModel;

/// A small but non-trivial model: ~15k states.
pub fn small_model() -> GprsModel {
    let cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(12)
        .max_gprs_sessions(7)
        .call_arrival_rate(0.5)
        .build()
        .expect("valid config");
    GprsModel::new(cfg).expect("valid model")
}

/// A mid-size model: ~190k states (quick-scale figure configuration).
pub fn medium_model() -> GprsModel {
    let cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(40)
        .call_arrival_rate(0.5)
        .build()
        .expect("valid config");
    GprsModel::new(cfg).expect("valid model")
}

/// The figure sweep workload cell: the Table 2 base with TM3, 5 % GPRS
/// users, one reserved PDCH and the quick-scale buffer — what
/// Figs. 7–15 actually sweep. Shared by the `sweep` criterion bench and
/// the `bench-report` binary so the nightly perf trajectory measures
/// exactly the workload the bench's ≥ 2× claim is made on.
pub fn figure_sweep_cell() -> CellConfig {
    CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .reserved_pdchs(1)
        .gprs_fraction(0.05)
        .buffer_capacity(40)
        .call_arrival_rate(0.5)
        .build()
        .expect("valid config")
}

/// The historical sweep loop: every point regenerates the model and
/// solves cold from its own product-form guess with fresh allocations —
/// the pre-template baseline both the `sweep` bench and `bench-report`
/// time against. Returns the summed carried data traffic (an
/// optimization barrier and a sanity value).
pub fn sweep_rebuild(base: &CellConfig, rates: &[f64], opts: &gprs_ctmc::SolveOptions) -> f64 {
    let mut acc = 0.0;
    for &rate in rates {
        let mut cfg = base.clone();
        cfg.call_arrival_rate = rate;
        let model = GprsModel::new(cfg).expect("valid config");
        let solved = model.solve(opts, None).expect("solve");
        acc += solved.measures().carried_data_traffic;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(small_model().config().num_states() < 50_000);
        assert!(medium_model().config().num_states() > 100_000);
    }
}
