//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the reproduction's computational kernels:
//!
//! * `solver` — steady-state solver comparison (block tridiagonal vs
//!   point Gauss–Seidel vs GTH) across state-space sizes — the ablation
//!   behind DESIGN.md's solver choice.
//! * `parallel` — sequential vs parallel pipeline: 8-point sweeps
//!   fanned out across threads, red-black SOR / Jacobi vs sequential
//!   Gauss–Seidel, and row-parallel sparse assembly, at the
//!   [`small_model`] and [`medium_model`] fixtures.
//! * `cluster` — the heterogeneous 7-cell fixed point: per-iteration
//!   cell solves sequential vs thread-parallel, plus the load-scale
//!   sweep (determinism is asserted before timing).
//! * `replication` — the wave-parallel replication engine: a fixed
//!   count of simulator replications at 1/2/4/8 threads, recording the
//!   scaling efficiency of the shared `gprs-exec` work queue
//!   (determinism asserted before timing).
//! * `generator` — transition enumeration and sparse assembly
//!   throughput.
//! * `simulator` — discrete-event throughput (events/s) for both radio
//!   fidelities and with/without TCP.
//! * `queueing` — Erlang-B, M/M/c/c distributions and handover
//!   balancing.
//! * `figures` — a `harness = false` target that regenerates every
//!   paper figure at quick scale, printing the same series the paper
//!   plots (so `cargo bench` exercises the full reproduction path).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use gprs_core::{CellConfig, GprsModel};
use gprs_traffic::TrafficModel;

/// A small but non-trivial model: ~15k states.
pub fn small_model() -> GprsModel {
    let cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(12)
        .max_gprs_sessions(7)
        .call_arrival_rate(0.5)
        .build()
        .expect("valid config");
    GprsModel::new(cfg).expect("valid model")
}

/// A mid-size model: ~190k states (quick-scale figure configuration).
pub fn medium_model() -> GprsModel {
    let cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(40)
        .call_arrival_rate(0.5)
        .build()
        .expect("valid config");
    GprsModel::new(cfg).expect("valid model")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(small_model().config().num_states() < 50_000);
        assert!(medium_model().config().num_states() > 100_000);
    }
}
