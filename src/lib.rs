//! # gprs-repro
//!
//! A full reproduction of **Lindemann & Thümmler, "Performance Analysis
//! of the General Packet Radio Service"** — the continuous-time Markov
//! chain model of the GPRS radio interface, the seven-cell validation
//! simulator with TCP, and every table and figure of the paper's
//! evaluation.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `gprs-core` | the paper's CTMC model (Table 1 generator, Eqs. 6–11 measures, sweeps, QoS dimensioning, adaptive PDCH management), the heterogeneous 7-cell cluster fixed point (`core::cluster`), and the unified [`Scenario`](core::scenario) layer that lowers one workload description to model, cluster, and simulator |
//! | [`sim`] | `gprs-sim` | network-level simulator: 7-cell cluster, handovers, BSC buffers, TCP Reno, TDMA radio blocks, load supervision, wave-parallel replication engine (`sim::replication`) |
//! | [`ctmc`] | `gprs-ctmc` | CTMC solvers: GTH, Gauss–Seidel/SOR, uniformization (stationary + transient), block tridiagonal (MBD) |
//! | [`exec`] | `gprs-exec` | deterministic thread fan-out executors shared by the whole pipeline (ordered work queue, range/chunk maps, `RAYON_NUM_THREADS` control) |
//! | [`queueing`] | `gprs-queueing` | Erlang-B / M/M/c/c closed forms, handover-flow balancing, exact IPP/M/c/K |
//! | [`traffic`] | `gprs-traffic` | 3GPP packet-session traffic model, IPP/MMPP analytics (IDC, superposition fits, H2 equivalence), samplers |
//! | [`des`] | `gprs-des` | discrete-event engine, RNG streams, batch-means statistics, sequential + wave-parallel replication stopping rules |
//! | [`experiments`] | `gprs-experiments` | per-figure reproduction harness (Figs. 5–15 + extensions) |
//!
//! # Quick start
//!
//! Solve the paper's base configuration and read off the headline
//! measures:
//!
//! ```
//! use gprs_repro::core::{CellConfig, GprsModel};
//! use gprs_repro::traffic::TrafficModel;
//!
//! // Small buffer keeps the doc test fast; drop these two overrides
//! // for the paper-exact configuration.
//! let config = CellConfig::builder()
//!     .traffic_model(TrafficModel::Model3)
//!     .buffer_capacity(15)
//!     .max_gprs_sessions(6)
//!     .call_arrival_rate(0.5)
//!     .build()?;
//! let solved = GprsModel::new(config)?.solve_default()?;
//! println!("carried data traffic: {:.2} PDCHs",
//!          solved.measures().carried_data_traffic);
//! # Ok::<(), gprs_repro::core::ModelError>(())
//! ```
//!
//! Solve a heterogeneous hot-spot cluster (the scenario the paper's
//! homogeneity assumption cannot represent):
//!
//! ```
//! use gprs_repro::core::cluster::{ClusterModel, ClusterSolveOptions};
//! use gprs_repro::core::CellConfig;
//! use gprs_repro::traffic::TrafficModel;
//!
//! let ring = CellConfig::builder()
//!     .traffic_model(TrafficModel::Model3)
//!     .buffer_capacity(6)
//!     .max_gprs_sessions(2)
//!     .call_arrival_rate(0.3)
//!     .build()?;
//! // Mid cell at twice the ring load.
//! let cluster = ClusterModel::hot_spot(ring, 0.6)?;
//! let solved = cluster.solve(&ClusterSolveOptions::quick())?;
//! // The hot cell exports handover flow to its light neighbours.
//! assert!(solved.mid().gsm_handover_out > solved.mid().gsm_handover_in);
//! # Ok::<(), gprs_repro::core::ModelError>(())
//! ```
//!
//! Reproduce the paper's figures with the `repro` binary:
//!
//! ```text
//! cargo run --release -p gprs-experiments --bin repro -- --figure all --scale full
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gprs_core as core;
pub use gprs_ctmc as ctmc;
pub use gprs_des as des;
pub use gprs_exec as exec;
pub use gprs_experiments as experiments;
pub use gprs_queueing as queueing;
pub use gprs_sim as sim;
pub use gprs_traffic as traffic;
