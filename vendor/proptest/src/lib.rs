//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, range / tuple / collection strategies,
//! `prop_map` / `prop_filter_map`, `any::<bool>()`, and
//! [`test_runner::ProptestConfig`] — as a plain randomized test runner.
//! Failing inputs are reported through the assertion message; there is
//! **no shrinking** (the real crate minimizes counterexamples, this one
//! just prints the values via the `prop_assert!` context).
//!
//! The container this repository builds in has no crates.io access, so
//! the workspace vendors this minimal implementation. Replacing the path
//! dependency with the real `proptest = "1"` requires no call-site
//! changes.

#![forbid(unsafe_code)]

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Cap on rejected (filtered-out) samples before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    /// Deterministic generator driving the strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name, so every test is
        /// reproducible run-to-run but decorrelated from its siblings.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift reduction; bias is immaterial for testing.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `generate` returns `None` when a filter rejected the sample; the
    /// runner retries with fresh randomness.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value (or `None` on filter rejection).
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters and maps: samples where `f` returns `None` are
        /// rejected and retried. `_reason` matches the real proptest
        /// signature (used there for reject bookkeeping).
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            _reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, f }
        }

        /// Keeps only samples satisfying `f`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    Some(self.start + rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    Some(lo + rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + rng.unit_f64() * (self.end - self.start))
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            let (lo, hi) = (*self.start(), *self.end());
            Some(lo + rng.unit_f64() * (hi - lo))
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> Option<f32> {
            Some(self.start + (rng.unit_f64() as f32) * (self.end - self.start))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy producing uniform values of a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct UniformPrimitive<T>(core::marker::PhantomData<T>);

    impl Strategy for UniformPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for bool {
        type Strategy = UniformPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            UniformPrimitive(core::marker::PhantomData)
        }
    }

    impl Strategy for UniformPrimitive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            Some(rng.unit_f64())
        }
    }

    impl Arbitrary for f64 {
        type Strategy = UniformPrimitive<f64>;
        fn arbitrary() -> Self::Strategy {
            UniformPrimitive(core::marker::PhantomData)
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property-based tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, ys in proptest::collection::vec(0.0f64..1.0, 1..5)) {
///         prop_assert!(x < 10 && !ys.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __cases = 0u32;
            let mut __rejects = 0u32;
            while __cases < __config.cases {
                match ($( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+) {
                    ($( Some($arg), )+) => {
                        __cases += 1;
                        $body
                    }
                    _ => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.max_global_rejects,
                            "too many rejected samples ({} accepted)",
                            __cases
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f64..2.5, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec((0u64..5, 0.0f64..1.0), 2..7)
        ) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn filter_map_retries(
            x in (0usize..100).prop_filter_map("even only", |x| {
                if x % 2 == 0 { Some(x) } else { None }
            })
        ) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_applies(s in (1usize..4).prop_map(|n| "ab".repeat(n))) {
            prop_assert!(s.len() >= 2);
            prop_assert_ne!(s.len(), 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
