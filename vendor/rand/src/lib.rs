//! Offline stand-in for the `rand` crate, covering exactly the API
//! surface this workspace uses: the [`Rng`] / [`SeedableRng`] traits and
//! [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64, the same
//! generator family the real `SmallRng` uses on 64-bit targets).
//!
//! The container this repository builds in has no crates.io access, so
//! the workspace vendors this minimal implementation instead of the real
//! dependency. Swap the `[patch]`-free path dependency for the real
//! `rand = "0.8"` when a registry is available; no call sites need to
//! change.

#![forbid(unsafe_code)]

/// Types that can be sampled from a uniform-bits generator.
///
/// Mirrors the role of `rand::distributions::Standard`: `f64` samples
/// uniformly on `[0, 1)`, integer types take uniform bits.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits, exactly the real rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Distribution types accepted by [`Rng::sample_iter`].
pub mod distributions {
    /// The standard distribution: uniform on `[0, 1)` for floats,
    /// uniform bits for integers.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;
}

/// Iterator over samples drawn from a generator (see
/// [`Rng::sample_iter`]).
#[derive(Debug)]
pub struct DistIter<R, T> {
    rng: R,
    _marker: core::marker::PhantomData<T>,
}

impl<R: Rng, T: StandardSample> Iterator for DistIter<R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.rng.gen())
    }
}

/// A random-number generator.
pub trait Rng {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform on `[0, 1)` for `f64`,
    /// uniform bits for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Consumes the generator into an infinite iterator of samples from
    /// the standard distribution.
    fn sample_iter<T: StandardSample>(self, _distr: distributions::Standard) -> DistIter<Self, T>
    where
        Self: Sized,
    {
        DistIter {
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_and_distinct_seeds() {
        let a: u64 = SmallRng::seed_from_u64(1).gen();
        let b: u64 = SmallRng::seed_from_u64(1).gen();
        let c: u64 = SmallRng::seed_from_u64(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }
}
