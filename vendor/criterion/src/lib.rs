//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API this workspace's benches
//! use — `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId` —
//! backed by a plain wall-clock harness: each benchmark is warmed up
//! once, then timed for `sample_size` samples, and the mean / min /
//! max per-iteration times are printed in a criterion-like format.
//!
//! No statistical analysis, outlier detection, or HTML reports; swap
//! the path dependency for the real `criterion = "0.5"` when a registry
//! is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes free arguments through.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            default_sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks `f` directly under `id` (ungrouped).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(self, id.to_string(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares the work per iteration, enabling a rate report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(self.criterion, full, n, self.throughput, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, rendered as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// A benchmark id `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    planned_samples: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then for the planned number of timed
    /// samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.planned_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        planned_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("nonempty");
    let max = *b.samples.iter().max().expect("nonempty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion {
            default_sample_size: 3,
            filter: None,
        };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).bench_function("f", |b| {
                b.iter(|| calls += 1);
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("solve", 42).to_string(), "solve/42");
    }
}
