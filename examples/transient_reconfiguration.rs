//! Transient analysis: how fast does the cell settle after a PDCH
//! re-configuration?
//!
//! The paper's future-work direction — adaptive performance management
//! (Lindemann, Lohmann & Thümmler 2002) — adjusts the number of
//! reserved PDCHs to the current load, which raises a question the
//! steady-state model cannot answer: *how long after a switch is the
//! steady-state analysis valid again?* Uniformization
//! (`gprs_ctmc::transient`) answers it two ways:
//!
//! 1. the realistic switch — start from the OLD configuration's
//!    stationary law, mapped onto the new state space
//!    (`adaptive::reconfiguration_transient`), and
//! 2. the worst case — start from an empty cell.
//!
//! ```text
//! cargo run --release --example transient_reconfiguration
//! ```

use gprs_repro::core::adaptive::reconfiguration_transient;
use gprs_repro::core::{CellConfig, GprsModel, Measures};
use gprs_repro::ctmc::{transient, SolveOptions, StationaryDistribution};
use gprs_repro::traffic::TrafficModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small buffer keeps the example interactive.
    let base = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(15)
        .max_gprs_sessions(8)
        .call_arrival_rate(0.6);

    // Old world: 1 reserved PDCH. New world: 4 reserved PDCHs.
    let old_cfg = base.clone().reserved_pdchs(1).build()?;
    let new_cfg = base.reserved_pdchs(4).build()?;
    let opts = SolveOptions::quick();

    let old = GprsModel::new(old_cfg.clone())?;
    let new = GprsModel::new(new_cfg.clone())?;
    let old_solved = old.solve(&opts, None)?;
    let new_solved = new.solve(&opts, None)?;
    println!(
        "steady-state PLP: old (1 PDCH) = {:.3e}, new (4 PDCHs) = {:.3e}",
        old_solved.measures().packet_loss_probability,
        new_solved.measures().packet_loss_probability
    );

    // --- The realistic switch -----------------------------------------
    // Start from the old stationary law (voice counts above the new cap
    // are censored to the boundary) and relax under the new generator.
    let times = [1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 900.0];
    println!("\nafter switching 1 -> 4 reserved PDCHs under load:");
    println!("  t [s]    CDT      PLP        distance to new steady state");
    for p in reconfiguration_transient(&old_cfg, &new_cfg, &times, &opts)? {
        println!(
            "  {:>5.0}  {:>7.3}  {:>9.3e}  {:>9.3e}",
            p.time,
            p.measures.carried_data_traffic,
            p.measures.packet_loss_probability,
            p.distance_to_steady_state
        );
    }

    // --- The worst case -------------------------------------------------
    // An empty cell is maximally out of equilibrium: this bounds how
    // long any reconfiguration transient can last.
    let n = new.space().num_states();
    let mut pi0 = vec![0.0; n];
    pi0[0] = 1.0;
    println!("\nrelaxation of the new configuration from an empty cell:");
    println!("  t [s]    CDT      PLP        distance to steady state");
    for &t in &times {
        let pi_t = transient::solve_transient(&new, &pi0, t)?;
        let dist: f64 = pi_t
            .iter()
            .zip(new_solved.stationary().as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0; // total variation
        let m = Measures::compute(&new, &StationaryDistribution::new(pi_t));
        println!(
            "  {t:>5.0}  {:>7.3}  {:>9.3e}  {dist:>9.3e}",
            m.carried_data_traffic, m.packet_loss_probability
        );
    }
    println!(
        "\nrule of thumb: measures are trustworthy once the total-variation \
         distance drops below ~1e-2. The realistic switch settles much \
         faster than the worst case — the buffer and session populations \
         carry over; only the voice tail must drain. An adaptive \
         controller's decision epoch must respect the slower of the two."
    );
    Ok(())
}
