//! Fully heterogeneous cluster quick start: every cell of the 7-cell
//! cluster runs its **own** parameterization — mixed coding schemes,
//! buffer sizes, channel splits and arrival rates — and the same
//! [`Scenario`](gprs_repro::core::Scenario) is lowered to *both* halves
//! of the pipeline: the analytical `ClusterModel` fixed point and the
//! network simulator (per-cell `SimConfig`), whose mid-cell measures
//! are then compared side by side.
//!
//! Until the per-cell configuration layer landed, the simulator could
//! only share one `CellConfig` across the cluster, so exactly these
//! scenarios — the ones the heterogeneous fixed point was built for —
//! could never be cross-validated. Now they are one constructor away.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster [seed]
//! ```

use gprs_repro::core::cluster::{ClusterSolveOptions, MID_CELL, NUM_CELLS};
use gprs_repro::core::{CellConfig, CodingScheme, Scenario};
use gprs_repro::sim::{GprsSimulator, SimConfig};
use gprs_repro::traffic::TrafficModel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7);

    // A deliberately motley cluster. Moderate buffer/session caps keep
    // the seven CTMCs example-sized; raise them for paper-exact cells.
    let base = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(25)
        .max_gprs_sessions(8)
        .call_arrival_rate(0.35)
        .build()?;
    let mut cells = vec![base; NUM_CELLS];
    // The mid cell: an upgraded hot site — clean-channel CS-4, extra
    // load.
    cells[MID_CELL].coding_scheme = CodingScheme::Cs4;
    cells[MID_CELL].call_arrival_rate = 0.55;
    // Cell 2: a legacy CS-1 site with a deep buffer.
    cells[2].coding_scheme = CodingScheme::Cs1;
    cells[2].buffer_capacity = 40;
    // Cell 4: a shrunken site (fewer carriers), lighter load.
    cells[4].total_channels = 16;
    cells[4].call_arrival_rate = 0.25;
    // Cell 5: a data-heavy site with a bigger session cap.
    cells[5].gprs_fraction = 0.15;
    cells[5].max_gprs_sessions = 12;
    let scenario = Scenario::from_cells("motley", cells)?;

    println!(
        "fully heterogeneous 7-cell cluster (scenario '{}'):",
        scenario.name()
    );
    println!("  cell |  lambda | coding |  N | buffer |  M  | f_GPRS");
    for (i, c) in scenario.base_cells().iter().enumerate() {
        println!(
            "  {i}    | {:7.3} | {:>6} | {:2} | {:6} | {:3} | {:5.2}",
            c.call_arrival_rate,
            format!("{:?}", c.coding_scheme),
            c.total_channels,
            c.buffer_capacity,
            c.max_gprs_sessions,
            c.gprs_fraction,
        );
    }

    // One lowering each; both sides consume the same effective cells.
    let t0 = Instant::now();
    let solved = scenario
        .to_cluster()?
        .solve(&ClusterSolveOptions::default())?;
    println!(
        "\ncluster fixed point: {} outer iterations, {:.1} ms, flow imbalance {:.2e}",
        solved.iterations(),
        t0.elapsed().as_secs_f64() * 1e3,
        solved.flow_imbalance()
    );
    println!("  cell | HO in /s | HO out/s |    CVT | GSM block | ATU kbit/s");
    for (i, cell) in solved.cells().iter().enumerate() {
        println!(
            "  {i}    | {:8.4} | {:8.4} | {:6.3} | {:9.4} | {:10.2}",
            cell.gsm_handover_in + cell.gprs_handover_in,
            cell.gsm_handover_out + cell.gprs_handover_out,
            cell.measures.carried_voice_traffic,
            cell.measures.gsm_blocking_probability,
            cell.measures.throughput_per_user_kbps,
        );
    }

    let cfg = SimConfig::for_scenario(&scenario)?
        .seed(seed)
        .warmup(1_000.0)
        .batches(6, 2_000.0)
        .build();
    println!(
        "\nsimulator: same scenario, per-cell configs (uniform: {}), seed {seed} ...",
        cfg.is_uniform()
    );
    let t0 = Instant::now();
    let sim = GprsSimulator::new(cfg).run();
    println!(
        "  {} events over {:.0} simulated s in {:.1} s wall clock",
        sim.events_processed,
        sim.simulated_time,
        t0.elapsed().as_secs_f64()
    );

    let mid = solved.mid();
    println!("\nmid cell, model vs simulator (95% CI):");
    let rows = [
        (
            "carried voice traffic",
            mid.measures.carried_voice_traffic,
            sim.carried_voice_traffic,
        ),
        (
            "carried data traffic",
            mid.measures.carried_data_traffic,
            sim.carried_data_traffic,
        ),
        (
            "GSM blocking prob.",
            mid.measures.gsm_blocking_probability,
            sim.gsm_blocking_probability,
        ),
        (
            "avg GPRS sessions",
            mid.measures.avg_gprs_sessions,
            sim.avg_gprs_sessions,
        ),
        (
            "GPRS handover inflow",
            mid.gprs_handover_in,
            sim.gprs_handover_in_rate,
        ),
    ];
    for (name, model, ci) in rows {
        println!(
            "  {name:22} model {model:8.4}   sim {:8.4} ± {:.4}",
            ci.mean, ci.half_width
        );
    }
    println!(
        "\n-> the simulator now runs the exact per-cell parameterization the \
         fixed point solves; before the per-cell configuration layer this \
         scenario was rejected at lowering time"
    );
    Ok(())
}
