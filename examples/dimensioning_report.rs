//! The network designer's dimensioning report — the question the paper
//! exists to answer ("how many PDCHs should be allocated for GPRS for a
//! given amount of traffic in order to guarantee appropriate QoS"),
//! rendered as one table.
//!
//! For every GPRS user share and PDCH reservation, the report states the
//! maximum call arrival rate sustainable under the paper's Section 5.3
//! QoS profile (per-user throughput degradation <= 50 %). The paper's
//! worked answers — 4 PDCHs hold to ≈ 1.0 / 0.5 / 0.3 calls/s for
//! 2 / 5 / 10 % GPRS users — appear as the bottom row.
//!
//! ```text
//! cargo run --release --example dimensioning_report [--full]
//! ```
//!
//! The default uses a reduced buffer so the report builds in about a
//! minute; `--full` solves the paper-exact configuration (much slower).

use gprs_repro::core::sweep::{par_sweep_arrival_rates, rate_grid};
use gprs_repro::core::{CellConfig, Measures};
use gprs_repro::ctmc::SolveOptions;
use gprs_repro::traffic::TrafficModel;

const QOS_MAX_DEGRADATION: f64 = 0.5;

fn config(
    share: f64,
    reserved: usize,
    full: bool,
) -> Result<CellConfig, Box<dyn std::error::Error>> {
    let mut cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .reserved_pdchs(reserved)
        .buffer_capacity(if full { 100 } else { 30 })
        .build()?;
    cfg.gprs_fraction = share;
    Ok(cfg)
}

/// Largest grid rate whose degradation stays within the profile,
/// interpolating the crossing between grid points.
fn qos_limit(rates: &[f64], degradation: &[f64]) -> Option<f64> {
    if degradation[0] > QOS_MAX_DEGRADATION {
        return None; // violated already at the lowest rate
    }
    for i in 1..rates.len() {
        if degradation[i] > QOS_MAX_DEGRADATION {
            let (x0, x1) = (rates[i - 1], rates[i]);
            let (y0, y1) = (degradation[i - 1], degradation[i]);
            let t = (QOS_MAX_DEGRADATION - y0) / (y1 - y0);
            return Some(x0 + t * (x1 - x0));
        }
    }
    Some(rates[rates.len() - 1]) // never violated on the grid
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let opts = if full {
        SolveOptions::default()
    } else {
        SolveOptions::quick()
    };
    let shares = [0.02, 0.05, 0.10];
    let reservations = [0usize, 1, 2, 4];
    let rates = rate_grid(0.05, 1.2, if full { 12 } else { 8 });

    println!("PDCH dimensioning report — QoS profile: throughput degradation <= 50 %");
    println!(
        "(traffic model 3, Table 2 base parameters{}; entries are the maximum",
        if full { "" } else { ", reduced buffer K = 30" }
    );
    println!("sustainable GSM+GPRS call arrival rate in calls/s)\n");

    print!("{:>14}", "reserved PDCHs");
    for share in shares {
        print!("  {:>10}", format!("{:.0}% GPRS", share * 100.0));
    }
    println!();

    for reserved in reservations {
        print!("{reserved:>14}");
        for share in shares {
            let base = config(share, reserved, full)?;
            // Reference throughput: the same cell, essentially unloaded.
            let mut ref_cfg = base.clone();
            ref_cfg.call_arrival_rate = 1e-3;
            let reference = {
                let model = gprs_repro::core::GprsModel::new(ref_cfg)?;
                model
                    .solve(&opts, None)?
                    .measures()
                    .throughput_per_user_kbps
            };
            let points = par_sweep_arrival_rates(&base, &rates, &opts)?;
            let degradation: Vec<f64> = points
                .iter()
                .map(|p: &gprs_repro::core::sweep::SweepPoint| {
                    degradation_of(&p.measures, reference)
                })
                .collect();
            match qos_limit(&rates, &degradation) {
                Some(limit) if limit >= rates[rates.len() - 1] - 1e-9 => {
                    print!("  {:>10}", format!(">{:.2}", rates[rates.len() - 1]))
                }
                Some(limit) => print!("  {limit:>10.2}"),
                None => print!("  {:>10}", "—"),
            }
        }
        println!();
    }

    println!(
        "\nreading: the paper concludes 4 reserved PDCHs sustain ≈ 1.0 / 0.5 / 0.3 \
         calls/s\nfor 2 / 5 / 10 % GPRS users — the bottom row reproduces that ordering."
    );
    Ok(())
}

fn degradation_of(m: &Measures, reference_kbps: f64) -> f64 {
    if reference_kbps <= 0.0 {
        return 0.0;
    }
    (1.0 - m.throughput_per_user_kbps / reference_kbps).clamp(0.0, 1.0)
}
