//! A real-city-style weighted topology through the **sharded** cluster
//! fixed point: the graph is loaded from a committed JSON file via the
//! codec (the same schema `gprs-campaign` specs embed), not built from
//! a generator, and the solve runs on the persistent partition workers
//! with halo-exchange boundary fluxes.
//!
//! The city (`examples/data/metro_city.json`, 48 cells): a dense 4x4
//! downtown grid, a 12-cell ring road feeding it with commuter-biased
//! weights (heavier toward the core than out of it), and four radial
//! corridors whose handover flux thins toward the outskirts. Edge
//! *presence* is symmetric (handover moves users both ways) but the
//! weights are not — exactly the asymmetry the weighted in-edge scan
//! and the shard halo exchange must agree on.
//!
//! ```text
//! cargo run --release --example metro_city [shards]
//! ```
//!
//! The shard count defaults to 4 (or `GPRS_SHARDS` when set); whatever
//! the value, the sharded solve is asserted **bitwise identical** to
//! the single-scan engine before any number is printed. CI runs this
//! example as the sharded-graph smoke.

use gprs_repro::core::cluster::{ClusterModel, ClusterSolveOptions};
use gprs_repro::core::codec::{graph_from_json_value, parse_json};
use gprs_repro::core::CellConfig;
use gprs_repro::traffic::TrafficModel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/metro_city.json");
    let doc = parse_json(&std::fs::read_to_string(path)?)?;
    let graph = graph_from_json_value(&doc, "metro_city")?;
    let n = graph.num_cells();
    println!(
        "metro city: {n} cells from {path}, flow-balanced: {}",
        graph.is_flow_balanced()
    );

    // District load profile: downtown cells run hot, the ring road
    // moderate, the radial corridors taper toward the outskirts.
    let cells: Vec<CellConfig> = (0..n)
        .map(|i| {
            let calls = match i {
                0..=15 => 0.060,                            // downtown grid
                16..=27 => 0.040,                           // ring road
                _ => 0.030 - 0.004 * ((i - 28) % 5) as f64, // radials, thinning
            };
            CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .total_channels(6)
                .reserved_pdchs(1)
                .buffer_capacity(8)
                .max_gprs_sessions(3)
                .call_arrival_rate(calls)
                .build()
                .expect("valid city cell")
        })
        .collect();
    let model = ClusterModel::from_graph(graph, cells)?;

    let base_opts = ClusterSolveOptions::quick().with_surrogate(true);
    // shards == 0 resolves GPRS_SHARDS (defaulting to 1); pin 4 in
    // that case so the smoke actually exercises the partition workers.
    let shards = if shards == 0 {
        std::env::var("GPRS_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4)
    } else {
        shards
    };

    let t0 = Instant::now();
    let baseline = model.solve(&base_opts.clone().with_shards(1))?;
    let base_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sharded = model.solve(&base_opts.clone().with_shards(shards))?;
    let shard_s = t0.elapsed().as_secs_f64();

    // The signature contract: sharding is purely an execution
    // strategy, so every per-cell float matches bit for bit.
    assert_eq!(sharded.iterations(), baseline.iterations());
    for (a, b) in sharded.cells().iter().zip(baseline.cells()) {
        assert_eq!(a.gsm_handover_in.to_bits(), b.gsm_handover_in.to_bits());
        assert_eq!(a.gprs_handover_in.to_bits(), b.gprs_handover_in.to_bits());
        assert_eq!(
            a.measures.gsm_blocking_probability.to_bits(),
            b.measures.gsm_blocking_probability.to_bits()
        );
    }
    println!(
        "fixed point: {} outer iterations, {} surrogate-served cell solves, \
         flow imbalance {:.2e}",
        sharded.iterations(),
        sharded.surrogate_solves(),
        sharded.flow_imbalance()
    );
    println!(
        "1 shard: {:.1} ms | {shards} shards: {:.1} ms (bitwise identical)",
        base_s * 1e3,
        shard_s * 1e3
    );

    // Commuter bias shows up as net inflow downtown and net outflow on
    // the outskirts.
    for (label, i) in [("downtown", 5usize), ("ring road", 20), ("outskirt", 32)] {
        let c = &sharded.cells()[i];
        println!(
            "  {label:9} cell {i:2}: HO in {:.4}/s, out {:.4}/s, \
             GSM block {:.4}, GPRS block {:.4}",
            c.gsm_handover_in + c.gprs_handover_in,
            c.gsm_handover_out + c.gprs_handover_out,
            c.measures.gsm_blocking_probability,
            c.measures.gprs_blocking_probability,
        );
    }
    assert!(sharded.flow_imbalance() < 1e-6);
    Ok(())
}
