//! Single-user dimensioning with the exact IPP/M/c/K queue.
//!
//! Before the full cell model, the paper's building block: one bursty
//! WWW-browsing source (the 3GPP traffic model as an interrupted
//! Poisson process) in front of `c` dedicated PDCHs and a finite BSC
//! buffer. The `gprs-queueing` QBD solver answers exactly — no
//! iteration, no simulation noise — questions like *how many PDCHs and
//! how much buffer does one 32 kbit/s user need for sub-percent loss?*
//!
//! ```text
//! cargo run --release --example single_user_queue
//! ```

use gprs_repro::queueing::IppMckQueue;
use gprs_repro::traffic::analysis::{Hyperexponential, Mmpp2};
use gprs_repro::traffic::{SessionParams, TrafficModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params: SessionParams = TrafficModel::Model3.params();
    let ipp = params.to_ipp();
    let mu = gprs_repro::core::CodingScheme::Cs2.packet_service_rate();

    println!("one 3GPP traffic-model-3 source (32 kbit/s during packet calls):");
    println!(
        "  on/off rates a = {:.3}/s, b = {:.3}/s; packet rate {:.2}/s; mean {:.2}/s",
        ipp.on_to_off_rate(),
        ipp.off_to_on_rate(),
        ipp.rate_on(),
        ipp.mean_rate()
    );
    let m2 = Mmpp2::from(ipp);
    let h2 = Hyperexponential::from_ipp(&ipp);
    println!(
        "  burstiness: IDC(inf) = {:.1}, interarrival SCV = {:.2} (Poisson would be 1)",
        m2.asymptotic_idc(),
        h2.scv()
    );

    println!("\nloss probability, one source on c dedicated CS-2 PDCHs, buffer K:");
    print!("{:>6}", "c \\ K");
    let buffers = [5usize, 10, 20, 50, 100];
    for &k in &buffers {
        print!("  {k:>9}");
    }
    println!();
    for servers in 1..=4usize {
        print!("{servers:>6}");
        for &k in &buffers {
            let q = IppMckQueue::new(
                ipp.on_to_off_rate(),
                ipp.off_to_on_rate(),
                ipp.rate_on(),
                servers,
                mu,
                servers + k,
            )?;
            print!("  {:>9.2e}", q.loss_probability());
        }
        println!();
    }

    // The dimensioning answer.
    println!("\nsmallest (c, K) with loss < 1%:");
    'outer: for servers in 1..=8usize {
        for k in 1..=200usize {
            let q = IppMckQueue::new(
                ipp.on_to_off_rate(),
                ipp.off_to_on_rate(),
                ipp.rate_on(),
                servers,
                mu,
                servers + k,
            )?;
            if q.loss_probability() < 0.01 {
                println!(
                    "  c = {servers} PDCH(s), K = {k} packets  \
                     (loss {:.2e}, mean delay {:.2} s)",
                    q.loss_probability(),
                    q.mean_waiting_time()
                );
                break 'outer;
            }
        }
    }
    println!(
        "\nnote: a single 8.33 packets/s burst against {mu:.2} packets/s per \
         PDCH needs either multiple PDCHs (multislot) or a deep buffer — \
         the trade the paper's Figs. 8-9 show at cell scale."
    );
    Ok(())
}
