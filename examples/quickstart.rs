//! Quickstart: solve the paper's base configuration (Table 2, traffic
//! model 3) at one arrival rate and print all performance measures.
//!
//! ```text
//! cargo run --release --example quickstart [arrival_rate]
//! ```

use gprs_repro::core::{CellConfig, GprsModel};
use gprs_repro::traffic::TrafficModel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.5);

    // The paper's base setting: N = 20 channels, 1 reserved PDCH,
    // K = 100, CS-2, traffic model 3 (M = 20), 5 % GPRS users.
    let config = CellConfig::paper_base(TrafficModel::Model3, rate)?;
    println!(
        "cell: {} channels, {} reserved PDCH(s), buffer {}, {} states",
        config.total_channels,
        config.reserved_pdchs,
        config.buffer_capacity,
        config.num_states()
    );

    let t0 = Instant::now();
    let model = GprsModel::new(config)?;
    println!(
        "balanced handover flows: GSM {:.4}/s, GPRS {:.4}/s",
        model.balanced_gsm().handover_arrival_rate,
        model.balanced_gprs().handover_arrival_rate,
    );

    let solved = model.solve_default()?;
    let m = solved.measures();
    println!(
        "solved {} states in {:.2?} ({} sweeps, residual {:.1e})\n",
        model.config().num_states(),
        t0.elapsed(),
        solved.sweeps(),
        solved.residual()
    );

    println!("measures at {rate} calls/s:");
    println!(
        "  carried data traffic (CDT) ...... {:.3} PDCHs",
        m.carried_data_traffic
    );
    println!(
        "  carried voice traffic (CVT) ..... {:.3} channels",
        m.carried_voice_traffic
    );
    println!(
        "  avg GPRS sessions (AGS) ......... {:.3}",
        m.avg_gprs_sessions
    );
    println!(
        "  packet loss probability (PLP) ... {:.3e}",
        m.packet_loss_probability
    );
    println!(
        "  queueing delay (QD) ............. {:.3} s",
        m.queueing_delay
    );
    println!(
        "  throughput per user (ATU) ....... {:.2} kbit/s",
        m.throughput_per_user_kbps
    );
    println!(
        "  GSM voice blocking .............. {:.3e}",
        m.gsm_blocking_probability
    );
    println!(
        "  GPRS session blocking ........... {:.3e}",
        m.gprs_blocking_probability
    );
    Ok(())
}
