//! Capacity planning: the paper's design question (Section 5.3).
//!
//! "How many PDCHs must be reserved for GPRS so that users keep at
//! least half of their unloaded throughput?" — answered for a grid of
//! arrival rates and GPRS shares, reproducing the paper's conclusion
//! that 4 reserved PDCHs cover 2 % GPRS users up to ≈ 1 call/s but 5 %
//! and 10 % only up to ≈ 0.5 and ≈ 0.3 calls/s.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use gprs_repro::core::{qos, CellConfig};
use gprs_repro::ctmc::SolveOptions;
use gprs_repro::traffic::TrafficModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced buffer keeps this example interactive (~seconds); the
    // repro binary runs the paper-exact version.
    let opts = SolveOptions::quick();
    let max_degradation = 0.5;

    println!("minimum reserved PDCHs for <= 50% throughput degradation");
    println!("(traffic model 3, N = 20 channels, M = 20 sessions, K = 40)\n");
    println!("  rate\\share   2% GPRS   5% GPRS   10% GPRS");
    for &rate in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut row = format!("  {rate:>4.1}      ");
        for &share in &[0.02, 0.05, 0.10] {
            let base = CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .buffer_capacity(40)
                .gprs_fraction(share)
                .call_arrival_rate(rate)
                .build()?;
            let answer = qos::min_reserved_pdchs_for_qos(&base, max_degradation, 6, &opts)?;
            row.push_str(&match answer {
                Some(n) => format!("{n:>8}  "),
                None => format!("{:>8}  ", ">6"),
            });
        }
        println!("{row}");
    }

    println!();
    // And the inverse question: with 4 reserved PDCHs, what degradation
    // does each share see at 0.5 calls/s?
    for &share in &[0.02, 0.05, 0.10] {
        let cfg = CellConfig::builder()
            .traffic_model(TrafficModel::Model3)
            .buffer_capacity(40)
            .reserved_pdchs(4)
            .gprs_fraction(share)
            .call_arrival_rate(0.5)
            .build()?;
        let check = qos::check_throughput_degradation(&cfg, max_degradation, &opts)?;
        println!(
            "4 PDCHs, {:>4.0}% GPRS at 0.5 calls/s: {:.1} of {:.1} kbit/s ({:.0}% degradation) -> {}",
            share * 100.0,
            check.throughput_kbps,
            check.reference_kbps,
            check.degradation * 100.0,
            if check.satisfied { "QoS met" } else { "QoS violated" }
        );
    }
    Ok(())
}
