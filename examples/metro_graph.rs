//! Metro-scale cell graphs quick start: the cluster fixed point and the
//! simulator on an **arbitrary topology** instead of the paper's fixed
//! 7-cell ring.
//!
//! A 100-cell urban corridor with five recurring cell kinds (cycled
//! buffer depths — five distinct state-space *shapes*) is solved with
//! graph-ordered Gauss–Seidel sweeps; the shape-keyed template registry
//! performs the symbolic setup (state-space enumeration, CSR pattern,
//! solver workspace) once per kind, not once per cell. A uniform hex
//! torus then demonstrates the flow-balanced case that degenerates to
//! the paper's homogeneous single-cell model.
//!
//! ```text
//! cargo run --release --example metro_graph [num_cells]
//! ```
//!
//! CI runs this example as the tier-1 graph smoke.

use gprs_repro::core::cluster::{ClusterModel, ClusterSolveOptions, SweepOrdering};
use gprs_repro::core::{CellConfig, CellGraph};
use gprs_repro::traffic::TrafficModel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(100);

    // Five cell kinds along the corridor: buffer depth cycles 6..=10,
    // load ramps gently from the quiet end to the busy end.
    let cells: Vec<CellConfig> = (0..n)
        .map(|i| {
            CellConfig::builder()
                .traffic_model(TrafficModel::Model3)
                .total_channels(6)
                .reserved_pdchs(1)
                .buffer_capacity(6 + (i % 5))
                .max_gprs_sessions(3)
                .call_arrival_rate(0.02 + 0.03 * i as f64 / n as f64)
                .build()
                .expect("valid corridor cell")
        })
        .collect();
    let graph = CellGraph::corridor(n)?;
    println!(
        "metro corridor: {n} cells, {} cell kinds, flow-balanced: {}",
        5.min(n),
        graph.is_flow_balanced()
    );

    let model = ClusterModel::from_graph(graph, cells)?;
    let opts = ClusterSolveOptions::quick().with_ordering(SweepOrdering::GaussSeidel);
    let t0 = Instant::now();
    let solved = model.solve(&opts)?;
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "Gauss-Seidel fixed point: {} outer iterations, {:.1} ms \
         ({:.0} cell solves/s), flow imbalance {:.2e}",
        solved.iterations(),
        secs * 1e3,
        (solved.iterations() * n) as f64 / secs,
        solved.flow_imbalance()
    );
    println!(
        "symbolic setups: {} (one per cell kind, not one per cell)",
        solved.symbolic_setups()
    );
    assert_eq!(solved.symbolic_setups(), 5.min(n));
    assert!(solved.flow_imbalance() < 1e-6);

    // The corridor's ends only talk to one neighbour; their handover
    // balance shows the topology (unlike the closed ring, in != out).
    for i in [0, n / 2, n - 1] {
        let c = &solved.cells()[i];
        println!(
            "  cell {i:4}: HO in {:.4}/s, HO out {:.4}/s, CVT {:.3} Erl, GSM block {:.4}",
            c.gsm_handover_in + c.gprs_handover_in,
            c.gsm_handover_out + c.gprs_handover_out,
            c.measures.carried_voice_traffic,
            c.measures.gsm_blocking_probability,
        );
    }

    // Flow-balanced contrast: a uniform hex torus behaves like the
    // paper's homogeneous cell in *every* cell.
    let torus = CellGraph::hex_torus(3, 4)?;
    let uniform = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .total_channels(6)
        .reserved_pdchs(1)
        .buffer_capacity(8)
        .max_gprs_sessions(3)
        .call_arrival_rate(0.03)
        .build()?;
    let solved =
        ClusterModel::uniform_graph(torus, uniform)?.solve(&ClusterSolveOptions::quick())?;
    let mid = solved.mid();
    println!(
        "\nuniform 3x4 hex torus: {} iterations, cell 0 HO in {:.4}/s = out {:.4}/s \
         (flow-balanced, degenerates to the single-cell model)",
        solved.iterations(),
        mid.gsm_handover_in + mid.gprs_handover_in,
        mid.gsm_handover_out + mid.gprs_handover_out,
    );
    Ok(())
}
