//! Model-vs-simulator validation at one operating point — a miniature
//! of the paper's Section 5.2.
//!
//! Runs the CTMC and the 7-cell network simulator (TCP Reno, explicit
//! handovers) on the same configuration and prints the measures side by
//! side with the simulator's 95 % confidence intervals.
//!
//! ```text
//! cargo run --release --example model_vs_simulator [arrival_rate] [seed]
//! ```

use gprs_repro::core::{CellConfig, GprsModel};
use gprs_repro::ctmc::SolveOptions;
use gprs_repro::sim::{GprsSimulator, SimConfig};
use gprs_repro::traffic::TrafficModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.5);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(7);

    let cell = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(40)
        .call_arrival_rate(rate)
        .build()?;

    println!("analytic model ({} states)...", cell.num_states());
    let solved = GprsModel::new(cell.clone())?.solve(&SolveOptions::quick(), None)?;
    let m = solved.measures();

    println!("simulator (7 cells, TCP, mid-cell statistics)...");
    let sim_cfg = SimConfig::builder(cell)
        .seed(seed)
        .warmup(1_500.0)
        .batches(8, 2_000.0)
        .build();
    let r = GprsSimulator::new(sim_cfg).run();
    println!(
        "  simulated {:.0} s, {} events, {} TCP retransmissions\n",
        r.simulated_time, r.events_processed, r.tcp_retransmissions
    );

    println!("measure                         model      simulator (95% CI)");
    let row = |name: &str, model: f64, ci: &gprs_repro::des::ConfidenceInterval| {
        let inside = ci.contains(model);
        println!(
            "  {name:<28} {model:>9.4}    {:>9.4} ± {:<8.4} {}",
            ci.mean,
            ci.half_width,
            if inside { "(model inside CI)" } else { "" }
        );
    };
    row(
        "carried data traffic",
        m.carried_data_traffic,
        &r.carried_data_traffic,
    );
    row(
        "carried voice traffic",
        m.carried_voice_traffic,
        &r.carried_voice_traffic,
    );
    row(
        "avg GPRS sessions",
        m.avg_gprs_sessions,
        &r.avg_gprs_sessions,
    );
    row(
        "packet loss probability",
        m.packet_loss_probability,
        &r.packet_loss_probability,
    );
    row("queueing delay (s)", m.queueing_delay, &r.queueing_delay);
    row(
        "throughput/user (kbit/s)",
        m.throughput_per_user_kbps,
        &r.throughput_per_user_kbps,
    );
    row(
        "GSM blocking",
        m.gsm_blocking_probability,
        &r.gsm_blocking_probability,
    );
    row(
        "GPRS blocking",
        m.gprs_blocking_probability,
        &r.gprs_blocking_probability,
    );

    // The balancing assumption the model makes, tested by the simulator:
    println!(
        "\nhandover balance: model λ_h,GPRS = {:.4}/s; simulator mid-cell inflow = {:.4} ± {:.4}/s",
        m.gprs_handover_rate, r.gprs_handover_in_rate.mean, r.gprs_handover_in_rate.half_width
    );
    Ok(())
}
