//! Model-vs-simulator validation at one operating point — a miniature
//! of the paper's Section 5.2.
//!
//! One [`Scenario`](gprs_repro::core::Scenario) describes the workload;
//! it is lowered to the CTMC (`Scenario::to_model`) and to the 7-cell
//! network simulator (`SimConfig::for_scenario`), then the simulator is
//! run as parallel independent replications until the carried voice
//! traffic reaches 5 % relative precision, and the measures are printed
//! side by side with the merged 95 % confidence intervals.
//!
//! ```text
//! cargo run --release --example model_vs_simulator [arrival_rate] [seed]
//! ```

use gprs_repro::core::{CellConfig, Scenario};
use gprs_repro::ctmc::SolveOptions;
use gprs_repro::sim::{run_replications, ReplicationOptions, SimConfig, TargetMeasure};
use gprs_repro::traffic::TrafficModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.5);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(7);

    let cell = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(40)
        .call_arrival_rate(rate)
        .build()?;
    let scenario = Scenario::homogeneous(cell)?.named("validation point");

    println!(
        "analytic model ({} states)...",
        scenario.mid_config()?.num_states()
    );
    let solved = scenario.to_model()?.solve(&SolveOptions::quick(), None)?;
    let m = solved.measures();

    println!("simulator (7 cells, TCP, mid-cell statistics; parallel replications)...");
    let sim_cfg = SimConfig::for_scenario(&scenario)?
        .seed(seed)
        .warmup(1_000.0)
        .batches(4, 2_000.0)
        .build();
    let opts = ReplicationOptions::new(0.05, 3, 8).with_target(TargetMeasure::CarriedVoiceTraffic);
    let r = run_replications(&sim_cfg, &opts);
    println!(
        "  {} replications ({}), {:.0} simulated s, {} events, {} TCP retransmissions\n",
        r.replications,
        if r.converged {
            "precision target met"
        } else {
            "budget exhausted"
        },
        r.simulated_time,
        r.events_processed,
        r.tcp_retransmissions
    );

    println!("measure                         model      simulator (95% CI over replications)");
    let row = |name: &str, model: f64, ci: &gprs_repro::des::ConfidenceInterval| {
        let inside = ci.contains(model);
        println!(
            "  {name:<28} {model:>9.4}    {:>9.4} ± {:<8.4} {}",
            ci.mean,
            ci.half_width,
            if inside { "(model inside CI)" } else { "" }
        );
    };
    row(
        "carried data traffic",
        m.carried_data_traffic,
        &r.carried_data_traffic,
    );
    row(
        "carried voice traffic",
        m.carried_voice_traffic,
        &r.carried_voice_traffic,
    );
    row(
        "avg GPRS sessions",
        m.avg_gprs_sessions,
        &r.avg_gprs_sessions,
    );
    row(
        "packet loss probability",
        m.packet_loss_probability,
        &r.packet_loss_probability,
    );
    row("queueing delay (s)", m.queueing_delay, &r.queueing_delay);
    row(
        "throughput/user (kbit/s)",
        m.throughput_per_user_kbps,
        &r.throughput_per_user_kbps,
    );
    row(
        "GSM blocking",
        m.gsm_blocking_probability,
        &r.gsm_blocking_probability,
    );
    row(
        "GPRS blocking",
        m.gprs_blocking_probability,
        &r.gprs_blocking_probability,
    );

    // The balancing assumption the model makes, tested by the simulator:
    println!(
        "\nhandover balance: model λ_h,GPRS = {:.4}/s; simulator mid-cell inflow = {:.4} ± {:.4}/s",
        m.gprs_handover_rate, r.gprs_handover_in_rate.mean, r.gprs_handover_in_rate.half_width
    );
    Ok(())
}
