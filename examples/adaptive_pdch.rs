//! Adaptive PDCH management end to end — the paper's future-work
//! direction (Section 6: "future work considers the dynamic adjustment
//! of the number of PDCHs with respect to the current GSM and GPRS
//! traffic load").
//!
//! Three acts:
//!
//! 1. **Offline policy** — solve the Markov model over a rate grid and
//!    tabulate the minimal PDCH reservation meeting a QoS profile.
//! 2. **Online control** — drive the hysteresis controller with a noisy
//!    "busy hour" load trace and print its decisions.
//! 3. **Closing the loop in the simulator** — run the network simulator
//!    with the capacity-on-demand supervision procedure and compare
//!    against a static reservation under the same seed.
//!
//! ```text
//! cargo run --release --example adaptive_pdch
//! ```

use gprs_repro::core::adaptive::{
    AdaptiveController, Decision, Hysteresis, PolicyTable, QosTargets,
};
use gprs_repro::core::CellConfig;
use gprs_repro::ctmc::SolveOptions;
use gprs_repro::sim::{GprsSimulator, SimConfig, SupervisionConfig};
use gprs_repro::traffic::TrafficModel;

fn base_cell() -> Result<CellConfig, Box<dyn std::error::Error>> {
    // Scaled-down cell (small buffer, small session cap) so the whole
    // example runs in seconds; the structure matches the paper's Table 2.
    let mut cfg = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(25)
        .max_gprs_sessions(8)
        .call_arrival_rate(0.3)
        .build()?;
    cfg.gprs_fraction = 0.10; // the paper's most demanding user mix
    Ok(cfg)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = base_cell()?;
    let opts = SolveOptions::quick();

    // --- Act 1: the offline policy table ------------------------------
    let targets = QosTargets::new()
        .max_throughput_degradation(0.5) // the paper's Section 5.3 profile
        .max_queueing_delay(1.0);
    let rates = [0.1, 0.2, 0.35, 0.5, 0.75, 1.0];
    println!(
        "computing policy table ({} rates x up to 5 reservations)...",
        rates.len()
    );
    let table = PolicyTable::compute(&base, &targets, &rates, 0..=4, &opts)?;
    println!("\n  rate [calls/s]   min reserved PDCHs for QoS");
    for (r, rec) in table.rates().iter().zip(table.recommendations()) {
        match rec {
            Some(n) => println!("  {r:>6.2}            {n}"),
            None => println!("  {r:>6.2}            infeasible -> tighten admission"),
        }
    }

    // --- Act 2: the online controller ---------------------------------
    // A synthetic busy hour: load ramps 0.15 -> 0.9 -> 0.2 with noise.
    let trace: Vec<f64> = (0..24)
        .map(|i| {
            let t = i as f64 / 23.0;
            let ramp = 0.15 + 0.75 * (std::f64::consts::PI * t).sin();
            // Deterministic "noise" so the demo is reproducible.
            ramp + 0.05 * ((i * 2654435761_usize) % 100) as f64 / 100.0
        })
        .collect();
    let mut ctl = AdaptiveController::new(table, Hysteresis::default(), 1);
    println!("\nbusy-hour trace ({} epochs):", trace.len());
    for (epoch, &rate) in trace.iter().enumerate() {
        match ctl.observe(rate) {
            Decision::Switch { from, to } => {
                println!("  epoch {epoch:>2}: load {rate:.2} -> reconfigure {from} -> {to} PDCHs")
            }
            Decision::Infeasible { kept } => {
                println!("  epoch {epoch:>2}: load {rate:.2} -> infeasible, keeping {kept} (admission control!)")
            }
            Decision::Keep(_) => {}
        }
    }
    println!("  final reservation: {} PDCHs", ctl.current());

    // --- Act 3: the simulator with capacity on demand ------------------
    let mut busy = base.clone();
    busy.call_arrival_rate = 0.8;
    let static_cfg = SimConfig::builder(busy.clone())
        .seed(5)
        .warmup(400.0)
        .batches(5, 800.0)
        .build();
    let supervised_cfg = SimConfig::builder(busy)
        .seed(5)
        .warmup(400.0)
        .batches(5, 800.0)
        .supervision(SupervisionConfig::default())
        .build();
    println!("\nsimulating the busy hour (static 1 PDCH vs capacity on demand)...");
    let fixed = GprsSimulator::new(static_cfg).run();
    let adaptive = GprsSimulator::new(supervised_cfg).run();
    println!("  static   : {}", fixed.summary());
    println!("  adaptive : {}", adaptive.summary());
    println!(
        "  adaptive reservation averaged {:.2} PDCHs ({} mid-cell reconfigurations)",
        adaptive.avg_reserved_pdchs.mean, adaptive.reconfigurations
    );
    println!(
        "  queueing delay: {:.2} s -> {:.2} s; voice blocking: {:.3} -> {:.3}",
        fixed.queueing_delay.mean,
        adaptive.queueing_delay.mean,
        fixed.gsm_blocking_probability.mean,
        adaptive.gsm_blocking_probability.mean
    );
    println!(
        "\nthe data path improves, the voice side pays a little — the exact \
         trade the paper says the operator must arbitrate."
    );
    Ok(())
}
