//! Hot-spot quick start: solve a heterogeneous 7-cell cluster where the
//! mid cell carries twice the ring cells' load, and compare the hot
//! cell against what the paper's homogeneous model would predict.
//!
//! The workload is described **once** as a
//! [`Scenario`](gprs_repro::core::Scenario); the cluster model and the
//! homogeneous reference are both lowerings of it (the
//! `model_vs_simulator` example lowers the same type to the simulator).
//!
//! ```text
//! cargo run --release --example hot_spot_cluster [ring_rate] [mid_rate]
//! ```

use gprs_repro::core::cluster::{ClusterSolveOptions, MID_CELL};
use gprs_repro::core::{CellConfig, Scenario};
use gprs_repro::traffic::TrafficModel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let ring_rate: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.3);
    let mid_rate: f64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2.0 * ring_rate);

    // Moderate buffer/session caps keep the seven CTMCs example-sized;
    // drop the two overrides for the paper-exact configuration.
    let ring = CellConfig::builder()
        .traffic_model(TrafficModel::Model3)
        .buffer_capacity(25)
        .max_gprs_sessions(8)
        .call_arrival_rate(ring_rate)
        .build()?;
    let scenario = Scenario::hot_spot(ring, mid_rate)?;
    let cluster = scenario.to_cluster()?;
    println!(
        "7-cell hot-spot cluster: ring at {ring_rate} calls/s, mid at {mid_rate} calls/s \
         ({} states per cell)",
        cluster.configs()[MID_CELL].num_states()
    );

    let t0 = Instant::now();
    let solved = cluster.solve(&ClusterSolveOptions::default())?;
    println!(
        "fixed point in {} outer iterations, {:.1} ms (flow imbalance {:.2e})",
        solved.iterations(),
        t0.elapsed().as_secs_f64() * 1e3,
        solved.flow_imbalance()
    );

    println!("\n cell |  lambda | HO in /s | HO out/s |    CVT |  GSM block | ATU kbit/s");
    for (i, cell) in solved.cells().iter().enumerate() {
        let label = if i == MID_CELL { "mid " } else { "ring" };
        println!(
            " {label} | {:7.3} | {:8.4} | {:8.4} | {:6.3} | {:10.4} | {:10.2}",
            cell.measures.call_arrival_rate,
            cell.gsm_handover_in + cell.gprs_handover_in,
            cell.gsm_handover_out + cell.gprs_handover_out,
            cell.measures.carried_voice_traffic,
            cell.measures.gsm_blocking_probability,
            cell.measures.throughput_per_user_kbps,
        );
        if i == MID_CELL {
            continue;
        }
        break; // all ring cells are identical by symmetry
    }

    // What the homogeneity assumption would claim for the hot cell: the
    // scenario's own uniform lowering at the mid cell.
    let homogeneous = scenario.homogeneous_at(MID_CELL)?.to_model()?;
    let solved_homog = homogeneous.solve_default()?;
    let mid = solved.mid();
    println!(
        "\nhot cell, homogeneous model: GSM block {:.4} (cluster: {:.4})",
        solved_homog.measures().gsm_blocking_probability,
        mid.measures.gsm_blocking_probability,
    );
    println!(
        "hot cell handover inflow:    homogeneous balance {:.4}/s, cluster {:.4}/s",
        homogeneous.balanced_gsm().handover_arrival_rate
            + homogeneous.balanced_gprs().handover_arrival_rate,
        mid.gsm_handover_in + mid.gprs_handover_in,
    );
    println!(
        "-> the lightly loaded ring sends back less traffic than the hot cell emits \
         ({:.4}/s), which the homogeneous model cannot represent",
        mid.gsm_handover_out + mid.gprs_handover_out
    );
    Ok(())
}
