//! Explore the 3GPP traffic model: analytic IPP/MMPP quantities versus
//! Monte-Carlo estimates from the generative sampler.
//!
//! ```text
//! cargo run --release --example traffic_explorer
//! ```

use gprs_repro::traffic::{sampler, SessionParams, TrafficModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    println!("3GPP packet service session model (ETSI TR 101 112)\n");

    for model in TrafficModel::ALL {
        let p: SessionParams = model.params();
        let ipp = p.to_ipp();

        // Monte-Carlo over full sessions.
        let n = 5_000;
        let mut duration = 0.0;
        let mut packets = 0usize;
        let mut on_time = 0.0;
        for _ in 0..n {
            let s = sampler::sample_session(&p, &mut rng);
            duration += s.duration();
            packets += s.total_packets();
            on_time += s.calls.iter().map(|c| c.on_duration()).sum::<f64>();
        }
        let mc_duration = duration / n as f64;
        let mc_packets = packets as f64 / n as f64;
        let mc_on_share = on_time / duration;

        println!("{model}");
        println!(
            "  mean session duration  analytic {:>9.1} s   sampled {:>9.1} s",
            p.mean_session_duration(),
            mc_duration
        );
        println!(
            "  packets per session    analytic {:>9.1}     sampled {:>9.1}",
            p.mean_packets_per_session(),
            mc_packets
        );
        println!(
            "  on-state share         analytic {:>9.3}     sampled {:>9.3}",
            p.on_probability(),
            mc_on_share
        );
        println!(
            "  mean packet rate       {:.3} packets/s  (burstiness IDC(inf) = {:.1})",
            ipp.mean_rate(),
            ipp.asymptotic_idc()
        );

        // Aggregation: 10 users as one MMPP.
        let agg = ipp.aggregate(10);
        let pi = agg.steady_state();
        let all_on = pi[0];
        let all_off = pi[10];
        println!("  10 aggregated users: mean rate {:.2} packets/s, P(all on) = {:.2e}, P(all off) = {:.2e}\n",
                 agg.mean_rate(), all_on, all_off);
    }
}
